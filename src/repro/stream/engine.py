"""The streaming monitor engine: Algorithm 1 over chunked IQ.

EDDIE's monitoring algorithm is inherently online -- it scores STSs
window by window -- but :meth:`Monitor.run_signal` needs the whole
capture in memory before the first verdict. :class:`StreamingMonitor`
closes that gap: it accepts arbitrary-size sample chunks via
:meth:`~StreamingMonitor.feed`, carries the STFT tail across chunk
boundaries (:class:`~repro.core.stft.StreamingStft`), extracts peaks and
quality flags per completed window, and drives the same
:meth:`Monitor.step` state machine -- including PR 2's batched K-S hot
path, which is reused unchanged. Steady-state memory is O(1) in the
stream length: the residual sample tail, the monitor's bounded rolling
history, and (optionally) per-chunk results the caller has not consumed.

Bit-identity contract (DESIGN.md D17): for any chunking of the same
signal, concatenating the per-chunk results equals
``Monitor.run_signal``'s result exactly. With ``quality_gating`` enabled
the gap/dead flags remain exact, while the clipped/energy-outlier flags
use causal running statistics (see
:class:`~repro.core.stft.StreamingQuality`) -- a fielded receiver cannot
consult the end of a capture it has not seen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.core.model import EddieModel
from repro.core.monitor import (
    AnomalyReport,
    Monitor,
    MonitorResult,
    plan_suffix,
    score_ks_jobs,
)
from repro.core.peaks import peak_matrix
from repro.core.stft import SpectrumSequence, StreamingQuality, StreamingStft
from repro.dsp import FrontendChain
from repro.errors import MonitoringError, SignalError
from repro.obs import OBS, span
from repro.types import Signal

__all__ = ["StreamSnapshot", "StreamingMonitor", "StreamSummary"]

ChunkLike = Union[np.ndarray, Signal]

_SNAPSHOT_KIND = "stream-snapshot"


def _plan_hints(plan, offset: int, start: int) -> Optional[dict]:
    """Per-window score hints harvested from a scored chunk plan.

    Maps each plan window at or after ``start`` (plan-relative; the
    commit already consumed everything before it) to its per-dimension
    ``(monitored_count, d, rejected)`` triple, keyed by the absolute
    chunk index (``offset`` + plan index). Returns None when the plan's
    jobs were never scored, in which case replay scores from scratch.
    """
    hints: dict = {}
    for job in plan.jobs:
        d = job.d
        rej = job.rejected
        if d is None or rej is None:
            return None
        dim = job.dim
        count = job.count
        wins = job.windows
        for pos in range(int(np.searchsorted(wins, start)), len(wins)):
            w = offset + int(wins[pos])
            entry = hints.get(w)
            if entry is None:
                entry = hints[w] = {}
            entry[dim] = (count, float(d[pos]), bool(rej[pos]))
    return hints


@dataclass(frozen=True)
class StreamSnapshot:
    """The complete resumable state of one monitoring stream.

    ``meta`` is a JSON-able dict (counters, region belief, config
    fingerprint, anomaly reports so far); ``arrays`` maps names to the
    numeric state (STFT carry samples, rolling history, sorted
    per-dimension buffers, quality baseline). The pair round-trips
    losslessly through :func:`repro.serialize.snapshot_to_bytes`, and a
    stream restored from it continues bit-identically to one that was
    never interrupted (DESIGN.md D19).
    """

    meta: dict
    arrays: dict


@dataclass(frozen=True)
class StreamSummary:
    """Closing statistics of one monitoring stream.

    Attributes:
        session_id: the fleet session this stream belonged to (empty for
            standalone streams).
        chunks: chunks fed.
        samples: raw samples consumed (including the residual tail).
        windows: STSs scored or skipped.
        reports: every anomaly/desync report, in time order.
        unscorable_fraction: share of windows skipped as unscorable.
        status: ``'ok'`` or ``'degraded'`` (same criterion as batch runs).
        stopped_early: whether early-exit ended the stream at the first
            anomaly.
    """

    session_id: str
    chunks: int
    samples: int
    windows: int
    reports: List[AnomalyReport] = field(default_factory=list)
    unscorable_fraction: float = 0.0
    status: str = "ok"
    stopped_early: bool = False

    @property
    def detected(self) -> bool:
        return any(r.kind == "anomaly" for r in self.reports)


class StreamingMonitor:
    """Chunked, stateful front end over :class:`~repro.core.monitor.Monitor`.

    Args:
        model: the trained :class:`~repro.core.model.EddieModel`. Shared
            by reference between sessions -- its per-region sorted
            references are precomputed once and reused by every monitor
            bound to it.
        batched: use the vectorized K-S hot path (bit-identical to the
            reference path either way).
        early_exit: stop scoring at the first ``anomaly`` report; the
            chunk result is truncated just after the reporting window and
            later ``feed`` calls return nothing.
        keep_history: retain per-chunk results so :meth:`result` can
            reassemble the full stream-wide :class:`MonitorResult`.
            Costs O(stream length); leave off for long-lived sessions.
        t0: absolute time of the first sample fed.
        session_id: label used in summaries and per-session metrics.
    """

    def __init__(
        self,
        model: EddieModel,
        *,
        batched: bool = True,
        early_exit: bool = False,
        keep_history: bool = False,
        t0: float = 0.0,
        session_id: str = "",
    ) -> None:
        self.model = model
        self.session_id = session_id
        cfg = model.config
        self._cfg = cfg
        self._monitor = Monitor(model, batched=batched)
        quality = None
        if cfg.quality_gating:
            quality = StreamingQuality(
                cfg.window_samples,
                cfg.overlap,
                clip_fraction=cfg.clip_fraction,
                gap_samples=cfg.gap_samples,
                dead_fraction=cfg.dead_fraction,
                energy_outlier_mads=cfg.energy_outlier_mads,
            )
        self._stft = StreamingStft(
            model.sample_rate,
            cfg.window_samples,
            cfg.overlap,
            t0=t0,
            quality=quality,
        )
        # Preprocessing front end (DESIGN.md D22): raw chunks pass
        # through the chain before the STFT sees them; finish() flushes
        # the chain's buffered tail through scoring so streaming matches
        # the batch pipeline sample for sample.
        self._frontend = (
            FrontendChain(cfg.frontend) if cfg.frontend else None
        )
        self._fe_drained = False
        self._early_exit = bool(early_exit)
        self._keep_history = bool(keep_history)
        self._chunk_results: Optional[List[MonitorResult]] = (
            [] if keep_history else None
        )
        self._chunks = 0
        self._windows = 0
        self._unscorable = 0
        self._reports: List[AnomalyReport] = []
        self._stopped = False
        self._summary: Optional[StreamSummary] = None

    # -- introspection -------------------------------------------------------

    @property
    def stopped(self) -> bool:
        """True once early-exit fired or :meth:`finish` was called."""
        return self._stopped or self._summary is not None

    @property
    def windows_seen(self) -> int:
        return self._windows

    @property
    def reports(self) -> List[AnomalyReport]:
        return list(self._reports)

    @property
    def current_region(self) -> str:
        return self._monitor.current_region

    @property
    def status(self) -> str:
        """Cumulative run status under the batch ``degraded`` criterion."""
        if (
            self._windows
            and self._unscorable / self._windows
            >= self._cfg.max_unscorable_fraction
        ):
            return "degraded"
        return "ok"

    def resident_bytes(self) -> int:
        """Approximate bytes of stream state held right now.

        Covers the residual STFT tail and the monitor's rolling history
        buffers -- the quantities that must stay flat as the stream grows
        (``keep_history`` results, if enabled, are counted too and are
        the one intentionally unbounded part).
        """
        mon = self._monitor
        total = mon._history.nbytes
        for buf in mon._buffers.values():
            total += buf._values.nbytes + buf._ages.nbytes
        if self._stft._buffer is not None:
            total += self._stft._buffer.nbytes
        if self._frontend is not None:
            total += self._frontend.resident_bytes()
        if self._chunk_results:
            for r in self._chunk_results:
                total += (
                    r.times.nbytes
                    + r.rejection_flags.nbytes
                    + r.group_sizes.nbytes
                    + r.unscorable_flags.nbytes
                )
        return total

    # -- driving -------------------------------------------------------------

    def feed(self, samples: ChunkLike) -> List[MonitorResult]:
        """Consume one chunk of raw samples; return the results of every
        window it completed.

        Returns an empty list while the stream is still inside its first
        window, after early-exit stopped it, or after :meth:`finish`.
        Each returned :class:`MonitorResult` covers a contiguous stretch
        of newly completed windows with chunk-local ``report_indices``;
        :meth:`MonitorResult.concat` re-bases them when reassembling the
        stream.
        """
        if self.stopped:
            return []
        samples = self._coerce_chunk(samples)
        if OBS.enabled:
            with span("stream.feed"):
                return self._feed_samples(samples)
        return self._feed_samples(samples)

    def _coerce_chunk(self, samples: ChunkLike) -> np.ndarray:
        if isinstance(samples, Signal):
            if samples.sample_rate != self.model.sample_rate:
                raise SignalError(
                    f"chunk sample rate {samples.sample_rate} does not "
                    f"match the model's {self.model.sample_rate}"
                )
            samples = samples.samples
        return np.asarray(samples)

    def _feed_samples(self, samples: np.ndarray) -> List[MonitorResult]:
        if self._frontend is not None and len(samples):
            samples = self._frontend.feed(samples)
        return self._feed_processed(samples, count_chunk=True)

    def _feed_processed(
        self, samples: np.ndarray, *, count_chunk: bool
    ) -> List[MonitorResult]:
        """Score already-preprocessed samples (the post-frontend path)."""
        staged = self._stft.begin_feed(samples)
        power = freqs = None
        if staged.n:
            power, freqs = self._stft.transform(staged)
        seq = self._emit_windows(staged, power, freqs, count=count_chunk)
        if len(seq) == 0:
            return []
        cfg = self._cfg
        peaks = peak_matrix(
            seq, cfg.energy_fraction, cfg.max_peaks, cfg.peak_prominence,
            cfg.diffuse_features,
        )
        plan = self._plan_windows(seq, peaks)
        if plan is not None and plan.jobs:
            score_ks_jobs(plan.jobs, cfg.alpha)
        result = self._finish_windows(seq, peaks, plan)
        return [result]

    # -- kernel hooks (see repro.stream.batchkernel) -------------------------
    #
    # The fleet kernel drives one chunk through the same stages as
    # _feed_samples, but pools the expensive middle stages (spectral
    # transform, peak extraction, K-S scoring) across every session of a
    # group before finishing each session individually. Canonical state
    # lives only in this object; the staged/pooled arrays are transient,
    # so snapshot/restore and eviction need no kernel-side pack/unpack.

    def _stage_chunk(self, samples: ChunkLike):
        """Stage one chunk's STFT (state advances; transform deferred).

        Returns ``None`` when the stream is stopped and accepts no
        further input.
        """
        if self.stopped:
            return None
        samples = self._coerce_chunk(samples)
        if self._frontend is not None and len(samples):
            samples = self._frontend.feed(samples)
        return self._stft.begin_feed(samples)

    def _emit_windows(
        self, staged, power, freqs, count: bool = True
    ) -> SpectrumSequence:
        """Turn a staged chunk plus its (possibly pooled) spectra into
        the chunk's window sequence; counts the chunk (unless it is the
        frontend's flush tail, which belongs to no fed chunk)."""
        seq = self._stft.finish_feed(staged, power, freqs)
        if count:
            self._chunks += 1
        return seq

    def _plan_windows(self, seq: SpectrumSequence, peaks: np.ndarray):
        """The monitor's optimistic fast-path plan for this chunk (or
        ``None`` when the chunk must replay through scalar steps)."""
        return self._monitor.plan_chunk(peaks, seq.quality)

    def _finish_windows(
        self, seq: SpectrumSequence, peaks: np.ndarray, plan
    ) -> MonitorResult:
        """Commit a scored plan's accept-only prefix, step through any
        divergence scalar, re-plan the remainder, and assemble the
        chunk's result."""
        result = self._score_windows(seq, peaks, plan)
        if self._keep_history:
            self._chunk_results.append(result)
        return result

    def _score_windows(
        self, seq: SpectrumSequence, peaks: np.ndarray, plan
    ) -> MonitorResult:
        mon = self._monitor
        cfg = self._cfg
        quality = seq.quality
        n = len(seq)
        tracked: List[str] = []
        reports: List[AnomalyReport] = []
        report_indices: List[int] = []
        rejection_flags = np.zeros(n, dtype=bool)
        unscorable_flags = np.zeros(n, dtype=bool)
        group_sizes = np.zeros(n, dtype=int)
        stop_at: Optional[int] = None
        # Alternate between committing fast-path plans and scalar-stepping
        # through divergences. The entry plan (already scored, possibly by
        # the fleet kernel) covers the accept-only prefix; each rejection
        # or state excursion is stepped scalar until a window accepts
        # cleanly, after which the remaining suffix is re-planned instead
        # of replaying scalar to the end of the chunk.
        #
        # The plan's per-window K-S scores outlive its accept-only
        # prefix: scalar replay pushes every scored window into the same
        # history positions the plan assumed, so until the replay leaves
        # the plan's straight line (an unscorable window skips a push, a
        # gap or resync rewrites the history, a region transition swaps
        # the reference and clamps the fill level -- a same-name
        # self-transition included, detectable as a rejected step whose
        # streak was reset), each replayed window's current-region
        # decisions can be served from the plan instead of recomputed.
        # Candidate probes still run live; see Monitor._hinted_dims.
        i = 0
        hints: Optional[dict] = None
        hints_region: Optional[str] = None
        live_plan = None  # last committed plan, meaningful while hints live
        live_offset = 0
        while i < n:
            if plan is None and i and n - i >= 2 and mon.fast_path_ready():
                # Re-entry with live hints means the replay never left
                # the committed plan's straight line, so the remaining
                # windows' verdicts are already known: slice them out of
                # the old plan instead of re-planning and re-scoring.
                if hints is not None and live_plan is not None:
                    plan = plan_suffix(live_plan, i - live_offset)
                if plan is None:
                    plan = mon.plan_chunk(
                        peaks[i:],
                        quality[i:] if quality is not None else None,
                    )
                    if plan is not None and plan.jobs:
                        score_ks_jobs(plan.jobs, cfg.alpha)
            if plan is not None:
                first_fast = mon.commit_chunk(plan)
                if first_fast < plan.k:
                    hints = _plan_hints(plan, i, first_fast)
                    hints_region = mon.current_region
                    live_plan, live_offset = plan, i
                plan = None
                if first_fast:
                    # The fast stretch is accept-only: region unchanged,
                    # no rejections, no reports, nothing unscorable.
                    region = mon.current_region
                    tracked.extend([region] * first_fast)
                    group_sizes[i:i + first_fast] = self.model.profile(
                        region
                    ).group_size
                    i += first_fast
                    continue
            while i < n:
                q = int(quality[i]) if quality is not None else 0
                report, rejected = mon.step(
                    peaks[i],
                    float(seq.times[i]),
                    quality=q,
                    score_hint=hints.get(i) if hints is not None else None,
                )
                if hints is not None and (
                    mon.last_unscorable
                    or mon.current_region != hints_region
                    or (rejected and mon._streak == 0)
                    or mon._gap_pending
                    or mon._resync_remaining is not None
                ):
                    hints = None
                tracked.append(mon.current_region)
                rejection_flags[i] = rejected
                unscorable_flags[i] = mon.last_unscorable
                group_sizes[i] = self.model.profile(
                    mon.current_region
                ).group_size
                if report is not None:
                    reports.append(report)
                    report_indices.append(i)
                    if self._early_exit and report.kind == "anomaly":
                        stop_at = i + 1
                        break
                accepted = not rejected and not mon.last_unscorable
                i += 1
                if accepted:
                    # An accepting step reset the streak counters --
                    # exactly the state plan_chunk assumes on entry.
                    break
            if stop_at is not None:
                break
        if stop_at is not None:
            self._stopped = True
            peaks = peaks[:stop_at]
            rejection_flags = rejection_flags[:stop_at]
            unscorable_flags = unscorable_flags[:stop_at]
            group_sizes = group_sizes[:stop_at]
            quality = quality[:stop_at] if quality is not None else None
            seq = seq.slice(0, stop_at)
        self._windows += len(tracked)
        self._unscorable += int(unscorable_flags.sum())
        self._reports.extend(reports)
        if OBS.enabled:
            mon._flush_obs_windows(
                peaks, tracked, reports, rejection_flags, unscorable_flags
            )
        return MonitorResult(
            times=np.asarray(seq.times, dtype=float),
            tracked=tracked,
            reports=reports,
            rejection_flags=rejection_flags,
            group_sizes=group_sizes,
            unscorable_flags=unscorable_flags,
            quality=quality,
            report_indices=report_indices,
            status=self.status,
        )

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> StreamSnapshot:
        """Capture the stream's full resumable state.

        The snapshot covers everything :meth:`feed` reads or writes --
        STFT carry samples, the monitor's rolling history and sorted
        buffers, region/streak/quality-gating state, and the stream's
        cumulative counters and reports -- and is stamped with the
        model's config fingerprint so :meth:`restore` can refuse a
        mismatched model. Guarantee: feed N chunks, snapshot, restore,
        feed M more produces exactly the results (and final summary) of
        feeding all N+M chunks into one uninterrupted stream.

        Only O(1)-memory streams are snapshottable: ``keep_history=True``
        retains unbounded per-chunk results that do not belong in a
        bounded checkpoint blob. Finished streams refuse too -- there is
        nothing left to resume.
        """
        from repro.serialize import config_fingerprint

        if self._summary is not None:
            raise MonitoringError("cannot snapshot a finished stream")
        if self._keep_history:
            raise MonitoringError(
                "snapshot() requires keep_history=False; history-keeping "
                "streams hold unbounded per-chunk results"
            )
        mon_meta, mon_arrays = self._monitor.export_state()
        stft_meta, stft_arrays = self._stft.export_state()
        fe_meta = fe_arrays = None
        if self._frontend is not None:
            fe_meta, fe_arrays = self._frontend.export_state()
        meta = {
            "kind": _SNAPSHOT_KIND,
            "config_fingerprint": config_fingerprint(self._cfg),
            "program_name": self.model.program_name,
            "session_id": self.session_id,
            "t0": self._stft.t0,
            "batched": self._monitor._batched,
            "early_exit": self._early_exit,
            "chunks": self._chunks,
            "windows": self._windows,
            "unscorable": self._unscorable,
            "stopped": self._stopped,
            "reports": [
                [r.time, r.region, r.streak, r.kind] for r in self._reports
            ],
            "monitor": mon_meta,
            "stft": stft_meta,
            "frontend": fe_meta,
            "fe_drained": self._fe_drained,
        }
        arrays = {}
        for name, value in mon_arrays.items():
            arrays[f"mon.{name}"] = value
        for name, value in stft_arrays.items():
            arrays[f"stft.{name}"] = value
        if fe_arrays is not None:
            for name, value in fe_arrays.items():
                arrays[f"fe.{name}"] = value
        return StreamSnapshot(meta=meta, arrays=arrays)

    @classmethod
    def restore(
        cls, model: EddieModel, snapshot: StreamSnapshot
    ) -> "StreamingMonitor":
        """Rebuild a stream from a :meth:`snapshot` taken elsewhere.

        ``model`` must be the same trained model (same config fingerprint
        and program) the snapshot was taken under; anything else would
        silently continue the stream against the wrong references.
        """
        from repro.serialize import config_fingerprint

        meta = snapshot.meta
        if meta.get("kind") != _SNAPSHOT_KIND:
            raise MonitoringError("not a stream snapshot")
        if meta.get("config_fingerprint") != config_fingerprint(model.config):
            raise MonitoringError(
                "snapshot was taken under a different pipeline config "
                "than this model's (config fingerprint mismatch)"
            )
        if meta.get("program_name") != model.program_name:
            raise MonitoringError(
                f"snapshot belongs to program {meta.get('program_name')!r}, "
                f"model was trained on {model.program_name!r}"
            )
        monitor = cls(
            model,
            batched=bool(meta["batched"]),
            early_exit=bool(meta["early_exit"]),
            keep_history=False,
            t0=float(meta["t0"]),
            session_id=str(meta["session_id"]),
        )
        monitor._chunks = int(meta["chunks"])
        monitor._windows = int(meta["windows"])
        monitor._unscorable = int(meta["unscorable"])
        monitor._stopped = bool(meta["stopped"])
        monitor._reports = [
            AnomalyReport(
                time=float(t), region=str(region), streak=int(streak),
                kind=str(kind),
            )
            for t, region, streak, kind in meta["reports"]
        ]

        def sub(prefix: str) -> dict:
            return {
                name[len(prefix):]: value
                for name, value in snapshot.arrays.items()
                if name.startswith(prefix)
            }

        monitor._monitor.restore_state(meta["monitor"], sub("mon."))
        monitor._stft.restore_state(meta["stft"], sub("stft."))
        # Legacy snapshots (pre-frontend) can only pass the fingerprint
        # check against a frontend-free config, where both fields below
        # are absent and the defaults already match.
        fe_meta = meta.get("frontend")
        if monitor._frontend is not None and fe_meta is not None:
            monitor._frontend.restore_state(fe_meta, sub("fe."))
        monitor._fe_drained = bool(meta.get("fe_drained", False))
        return monitor

    def _drain_frontend(self) -> List[MonitorResult]:
        """Flush the frontend chain's buffered tail through scoring.

        The batch pipeline processes a signal's final partial block and
        the FIR delay pad; a streaming frontend holds those samples until
        the stream ends, so closing the stream must push them through the
        same scoring path (not counted as a fed chunk). Idempotent;
        returns the results of any windows the tail completed.
        """
        if self._frontend is None or self._fe_drained:
            return []
        self._fe_drained = True
        if self.stopped:
            return []
        tail = self._frontend.flush()
        if len(tail) == 0:
            return []
        return self._feed_processed(tail, count_chunk=False)

    def finish(self) -> StreamSummary:
        """Close the stream: flush run-level metrics, return the summary.

        With a frontend attached, its buffered tail is drained through
        scoring first, so summaries cover every sample the batch path
        would have scored (window counts, reports, and -- for
        ``keep_history`` streams -- :meth:`result` all include the tail's
        windows). Idempotent -- a second call returns the same summary
        without double-counting.
        """
        if self._summary is not None:
            return self._summary
        self._drain_frontend()
        if OBS.enabled:
            self._monitor._flush_obs_run(self.status)
        self._summary = StreamSummary(
            session_id=self.session_id,
            chunks=self._chunks,
            samples=self._stft.samples_seen,
            windows=self._windows,
            reports=list(self._reports),
            unscorable_fraction=(
                self._unscorable / self._windows if self._windows else 0.0
            ),
            status=self.status,
            stopped_early=self._stopped,
        )
        return self._summary

    def result(self) -> MonitorResult:
        """The stream-wide result (requires ``keep_history=True``)."""
        if self._chunk_results is None:
            raise MonitoringError(
                "result() needs keep_history=True; only the summary is "
                "retained in O(1) mode"
            )
        return MonitorResult.concat(
            self._chunk_results,
            max_unscorable_fraction=self._cfg.max_unscorable_fraction,
        )

    def run(self, chunks: Iterable[ChunkLike]) -> MonitorResult:
        """Feed every chunk, finish, and return the merged result.

        A convenience for scripts and tests; it accumulates per-chunk
        results locally (O(stream length)), unlike pure ``feed`` loops.
        """
        collected: List[MonitorResult] = []
        for chunk in chunks:
            collected.extend(self.feed(chunk))
        collected.extend(self._drain_frontend())
        self.finish()
        return MonitorResult.concat(
            collected,
            max_unscorable_fraction=self._cfg.max_unscorable_fraction,
        )
