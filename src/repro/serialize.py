"""Persistence for trained EDDIE models.

A deployed EDDIE monitor (the paper envisions a <$100 dedicated receiver
with "some flash for storing the model from training") needs the model as
an artifact. Models serialize to a single ``.npz`` file: JSON metadata
plus one reference array per region.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.core.model import (
    CalibrationInfo,
    EddieConfig,
    EddieModel,
    RegionProfile,
)
from repro.dsp import stage_from_dict, stage_to_dict
from repro.em.scenario import EmTrace
from repro.errors import ConfigurationError
from repro.types import FaultSpan, RegionInterval, RegionTimeline, Signal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stream.engine import StreamSnapshot

__all__ = [
    "config_fingerprint",
    "save_model",
    "load_model",
    "save_trace",
    "load_trace",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "save_snapshot",
    "load_snapshot",
]

_FORMAT_VERSION = 1
_SNAPSHOT_VERSION = 1


def config_fingerprint(config: EddieConfig) -> str:
    """SHA-256 fingerprint of a pipeline config (via :mod:`repro.cache`).

    Stored in model metadata so loaders (and the model registry) can
    detect a corrupted or hand-edited config section without trusting
    the file's own claims about itself.
    """
    # Imported lazily: repro.cache imports this module at top level.
    from repro.cache import fingerprint

    return fingerprint("eddie-config", config)


def _calibration_digest(cal_dict: dict, cfg_fp: str) -> str:
    """Tamper-evident digest binding a calibration block to its config.

    Covers the canonical JSON of the calibration provenance *and* the
    config fingerprint it was saved under, so neither the provenance
    fields nor the config section can be swapped independently after
    save without the load-time check below refusing the file.
    """
    payload = json.dumps(
        {"calibration": cal_dict, "config_fingerprint": cfg_fp},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def save_model(model: EddieModel, path: Union[str, Path]) -> None:
    """Write a trained model to ``path`` (.npz)."""
    meta = {
        "format_version": _FORMAT_VERSION,
        "config_fingerprint": config_fingerprint(model.config),
        "program_name": model.program_name,
        "sample_rate": model.sample_rate,
        "initial_regions": model.initial_regions,
        "successors": model.successors,
        "config": {
            "window_samples": model.config.window_samples,
            "overlap": model.config.overlap,
            "energy_fraction": model.config.energy_fraction,
            "peak_prominence": model.config.peak_prominence,
            "max_peaks": model.config.max_peaks,
            "alpha": model.config.alpha,
            "statistic": model.config.statistic,
            "diffuse_features": model.config.diffuse_features,
            "change_steps": model.config.change_steps,
            "report_threshold": model.config.report_threshold,
            "change_fraction": model.config.change_fraction,
            "group_sizes": list(model.config.group_sizes),
            "reference_cap": model.config.reference_cap,
            "min_mon_values": model.config.min_mon_values,
            "quality_gating": model.config.quality_gating,
            "clip_fraction": model.config.clip_fraction,
            "gap_samples": model.config.gap_samples,
            "dead_fraction": model.config.dead_fraction,
            "energy_outlier_mads": model.config.energy_outlier_mads,
            "resync_timeout": model.config.resync_timeout,
            "max_unscorable_fraction": model.config.max_unscorable_fraction,
            "frontend": [
                stage_to_dict(stage) for stage in model.config.frontend
            ],
        },
        "regions": [
            {
                "name": profile.name,
                "num_peaks": profile.num_peaks,
                "group_size": profile.group_size,
                "descriptor_dims": list(profile.descriptor_dims),
            }
            for profile in model.profiles.values()
        ],
    }
    if model.calibration is not None:
        cal_dict = model.calibration.to_dict()
        meta["calibration"] = {
            "info": cal_dict,
            "digest": _calibration_digest(
                cal_dict, meta["config_fingerprint"]
            ),
        }
    arrays = {
        f"reference_{i}": profile.reference
        for i, profile in enumerate(model.profiles.values())
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, meta=json.dumps(meta), **arrays)


def load_model(path: Union[str, Path]) -> EddieModel:
    """Load a model previously written by :func:`save_model`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            meta = json.loads(str(data["meta"]))
        except KeyError:
            raise ConfigurationError(f"{path}: not an EDDIE model file") from None
        version = meta.get("format_version")
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"{path}: unsupported model format version {version!r}"
            )
        cfg_dict = dict(meta["config"])
        cfg_dict["group_sizes"] = tuple(cfg_dict["group_sizes"])
        # Legacy files predate the frontend field; absent means none.
        # Present entries round-trip through the stage registry, and a
        # tampered entry either fails reconstruction here or changes the
        # rebuilt config's fingerprint, tripping the check below.
        cfg_dict["frontend"] = tuple(
            stage_from_dict(entry)
            for entry in cfg_dict.get("frontend", ())
        )
        config = EddieConfig(**cfg_dict)
        expected = meta.get("config_fingerprint")
        if expected is not None and expected != config_fingerprint(config):
            # Legacy files lack the field and load unchecked; a present
            # but wrong value means the config section was altered after
            # save (corruption or a mislabeled artifact).
            raise ConfigurationError(
                f"{path}: config fingerprint mismatch -- the file's "
                f"config section does not match its recorded fingerprint "
                f"(corrupted or mislabeled model artifact)"
            )
        # Models written before the transfer layer carry no calibration
        # block and load as base models. A present block must verify
        # against its recorded digest (which also binds the config
        # fingerprint): any edit to the provenance fields -- base
        # fingerprint, warp parameters -- is refused here.
        calibration = None
        cal_block = meta.get("calibration")
        if cal_block is not None:
            if not isinstance(cal_block, dict) or "info" not in cal_block:
                raise ConfigurationError(
                    f"{path}: malformed calibration block"
                )
            recorded = cal_block.get("digest")
            actual = _calibration_digest(
                cal_block["info"], meta.get("config_fingerprint", "")
            )
            if recorded != actual:
                raise ConfigurationError(
                    f"{path}: calibration block failed its integrity "
                    f"check (tampered or corrupted derivation provenance)"
                )
            calibration = CalibrationInfo.from_dict(cal_block["info"])
        profiles = {}
        for i, region_meta in enumerate(meta["regions"]):
            profiles[region_meta["name"]] = RegionProfile(
                name=region_meta["name"],
                reference=data[f"reference_{i}"],
                num_peaks=region_meta["num_peaks"],
                group_size=region_meta["group_size"],
                descriptor_dims=tuple(region_meta.get("descriptor_dims", ())),
            )
    return EddieModel(
        program_name=meta["program_name"],
        config=config,
        profiles=profiles,
        successors={k: list(v) for k, v in meta["successors"].items()},
        initial_regions=list(meta["initial_regions"]),
        sample_rate=float(meta["sample_rate"]),
        calibration=calibration,
    )


def _snapshot_digest(meta: dict, arrays: dict) -> str:
    """SHA-256 over the snapshot's canonical content.

    Covers the metadata (canonical JSON) and every array's name, dtype,
    shape, and raw bytes, in sorted name order. A torn spill file or
    flipped bit fails verification instead of restoring garbage state.
    """
    digest = hashlib.sha256()
    digest.update(
        json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(arr.dtype).encode("utf-8"))
        digest.update(str(arr.shape).encode("utf-8"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def snapshot_to_bytes(snapshot: "StreamSnapshot") -> bytes:
    """Encode a stream snapshot as a self-verifying ``.npz`` blob.

    The blob is versioned and stamped with a content digest (on top of
    the config fingerprint the streaming engine already embeds), so the
    serving layer can spill it to disk and trust what it reads back.
    Uncompressed: spill files are checkpoint-cadence hot-path writes and
    the arrays are mostly noise-like floats that compress poorly.
    """
    wrapper = {
        "format_version": _SNAPSHOT_VERSION,
        "kind": "stream-snapshot",
        "digest": _snapshot_digest(snapshot.meta, snapshot.arrays),
        "state": snapshot.meta,
    }
    buffer = io.BytesIO()
    np.savez(buffer, meta=json.dumps(wrapper), **snapshot.arrays)
    return buffer.getvalue()


def snapshot_from_bytes(data: bytes) -> "StreamSnapshot":
    """Decode and verify a blob written by :func:`snapshot_to_bytes`.

    Raises :class:`ConfigurationError` (never a raw numpy/zipfile
    traceback) when the blob is truncated, corrupted, or not a snapshot.
    """
    from repro.stream.engine import StreamSnapshot

    try:
        with np.load(io.BytesIO(bytes(data)), allow_pickle=False) as npz:
            if "meta" not in npz.files:
                raise ConfigurationError("not a stream snapshot (no metadata)")
            wrapper = json.loads(str(npz["meta"]))
            arrays = {
                name: npz[name] for name in npz.files if name != "meta"
            }
    except ConfigurationError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, KeyError) as exc:
        raise ConfigurationError(
            f"corrupt or truncated stream snapshot: {exc}"
        ) from exc
    if wrapper.get("kind") != "stream-snapshot":
        raise ConfigurationError("not a stream snapshot")
    if wrapper.get("format_version") != _SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"unsupported snapshot format version "
            f"{wrapper.get('format_version')!r}"
        )
    meta = wrapper.get("state")
    if not isinstance(meta, dict):
        raise ConfigurationError("stream snapshot metadata is malformed")
    if wrapper.get("digest") != _snapshot_digest(meta, arrays):
        raise ConfigurationError(
            "stream snapshot failed its integrity check (truncated or "
            "corrupted blob)"
        )
    return StreamSnapshot(meta=meta, arrays=arrays)


def save_snapshot(
    snapshot: "StreamSnapshot", path: Union[str, Path]
) -> None:
    """Write a stream snapshot to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(snapshot_to_bytes(snapshot))


def load_snapshot(path: Union[str, Path]) -> "StreamSnapshot":
    """Load and verify a snapshot written by :func:`save_snapshot`."""
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read stream snapshot {path}: {exc}"
        ) from exc
    return snapshot_from_bytes(data)


def save_trace(trace: EmTrace, path: Union[str, Path]) -> None:
    """Write one captured EM trace (IQ + ground truth) to ``path`` (.npz).

    Enables the capture-once / analyze-offline workflow: a deployed
    receiver records traces in the field, training and monitoring run
    elsewhere.
    """
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "trace",
        "sample_rate": trace.iq.sample_rate,
        "t0": trace.iq.t0,
        "timeline": [
            [iv.region, iv.t_start, iv.t_end] for iv in trace.timeline
        ],
        "injected_spans": [list(span) for span in trace.injected_spans],
        "fault_spans": [
            [f.kind, f.t_start, f.t_end, f.magnitude]
            for f in trace.fault_spans
        ],
        "instr_count": trace.instr_count,
        "injected_instr_count": trace.injected_instr_count,
        "inputs": trace.inputs,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, meta=json.dumps(meta), iq=trace.iq.samples)


def load_trace(path: Union[str, Path]) -> EmTrace:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            meta = json.loads(str(data["meta"]))
        except KeyError:
            raise ConfigurationError(f"{path}: not an EDDIE trace file") from None
        if meta.get("kind") != "trace":
            raise ConfigurationError(f"{path}: not an EDDIE trace file")
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"{path}: unsupported trace format version "
                f"{meta.get('format_version')!r}"
            )
        iq = Signal(data["iq"], float(meta["sample_rate"]), float(meta["t0"]))
    timeline = RegionTimeline(
        [RegionInterval(region, t0, t1) for region, t0, t1 in meta["timeline"]]
    )
    return EmTrace(
        iq=iq,
        timeline=timeline,
        injected_spans=[tuple(span) for span in meta["injected_spans"]],
        instr_count=int(meta["instr_count"]),
        injected_instr_count=int(meta["injected_instr_count"]),
        inputs=dict(meta["inputs"]),
        fault_spans=[
            FaultSpan(kind=k, t_start=s, t_end=e, magnitude=m)
            for k, s, e, m in meta.get("fault_spans", [])
        ],
    )
