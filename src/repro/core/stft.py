"""Short-Term Fourier Transform producing the paper's STS sequence.

EDDIE converts the received signal into overlapping windows and each window
into its spectrum -- a Short-Term Spectrum (STS). All training and
monitoring operates on the resulting sequence (Section 3).

Real signals (simulator power traces) use a one-sided spectrum; complex IQ
(EM captures) use a two-sided, frequency-shifted spectrum so sidebands on
both sides of the carrier are visible, as in the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SignalError
from repro.obs import OBS, record_count
from repro.types import Signal

__all__ = [
    "SpectrumSequence",
    "StreamingStft",
    "StreamingQuality",
    "stft",
    "stft_seconds",
    "window_quality",
    "QF_CLIPPED",
    "QF_GAPPED",
    "QF_DEAD",
    "QF_ENERGY_OUTLIER",
    "QF_UNSCORABLE",
]

# Per-window quality flags (bitmask). A window carrying any of these was
# corrupted at acquisition time and its spectrum does not describe the
# monitored program; the monitor treats such windows as *unscorable*
# rather than anomalous (DESIGN.md D14).
QF_CLIPPED = 0x1         # ADC saturation: samples piled up at the rails
QF_GAPPED = 0x2          # sample-drop gap: a run of exact zeros inside
QF_DEAD = 0x4            # dead channel: the window is (almost) all zeros
QF_ENERGY_OUTLIER = 0x8  # impulsive interference / gain step: energy far
                         # outside the capture's robust range
QF_UNSCORABLE = QF_CLIPPED | QF_GAPPED | QF_DEAD | QF_ENERGY_OUTLIER


@dataclass(frozen=True)
class SpectrumSequence:
    """A sequence of Short-Term Spectra.

    Attributes:
        freqs: bin frequencies in Hz (two-sided and ascending for complex
            input, one-sided for real input).
        times: absolute center time of each window, in seconds.
        power: power spectra, shape ``(n_windows, n_bins)``.
        window_duration: length of each window in seconds.
        hop_duration: time between consecutive window starts in seconds.
    """

    freqs: np.ndarray
    times: np.ndarray
    power: np.ndarray
    window_duration: float
    hop_duration: float
    quality: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.times)

    @property
    def n_bins(self) -> int:
        return len(self.freqs)

    def window_span(self, index: int) -> tuple:
        """(t_start, t_end) of window ``index``."""
        center = self.times[index]
        half = self.window_duration / 2.0
        return (center - half, center + half)

    def slice(self, start: int, stop: int) -> "SpectrumSequence":
        """A view of windows [start, stop)."""
        return SpectrumSequence(
            freqs=self.freqs,
            times=self.times[start:stop],
            power=self.power[start:stop],
            window_duration=self.window_duration,
            hop_duration=self.hop_duration,
            quality=(
                self.quality[start:stop] if self.quality is not None else None
            ),
        )


def stft(
    signal: Signal,
    window_samples: int = 1024,
    overlap: float = 0.5,
    window: str = "hann",
    detrend: bool = True,
    fold: bool = True,
) -> SpectrumSequence:
    """Compute the STS sequence of a signal.

    Args:
        signal: real power trace or complex IQ capture.
        window_samples: samples per window.
        overlap: fractional overlap between consecutive windows (the paper
            uses 0.1 ms windows with 50% overlap).
        window: ``'hann'``, ``'hamming'``, or ``'rect'``.
        detrend: subtract each window's mean before transforming, removing
            the (uninformative) DC component of power traces.
        fold: for complex IQ input, add the power at -f onto +f and report
            a one-sided spectrum. The AM envelope is real, so the baseband
            spectrum is conjugate-symmetric and each physical sideband
            appears as a +/-f pair; folding merges the pair into a single
            peak so the K-S dimensions see one observation per sideband
            instead of a randomly-ordered sign pair.
    """
    if window_samples < 8:
        raise SignalError(f"window_samples must be >= 8, got {window_samples}")
    if not 0.0 <= overlap < 1.0:
        raise SignalError(f"overlap must be in [0, 1), got {overlap}")
    samples = signal.samples
    if len(samples) < window_samples:
        raise SignalError(
            f"signal has {len(samples)} samples, shorter than one window "
            f"({window_samples})"
        )

    hop = max(1, int(round(window_samples * (1.0 - overlap))))
    taper = _taper(window, window_samples)
    is_complex = np.iscomplexobj(samples)

    n_windows = 1 + (len(samples) - window_samples) // hop
    starts = np.arange(n_windows) * hop
    # Build a strided view [n_windows, window_samples] without copying.
    frames = np.lib.stride_tricks.sliding_window_view(samples, window_samples)[starts]
    power, freqs = _transform_frames(
        frames, is_complex, taper, detrend, fold,
        window_samples, signal.sample_rate,
    )
    times = signal.t0 + (starts + window_samples / 2.0) / signal.sample_rate
    if OBS.enabled:
        record_count("core.stft", "transforms")
        record_count("core.stft", "windows", n_windows)
    return SpectrumSequence(
        freqs=freqs,
        times=times,
        power=power,
        window_duration=window_samples / signal.sample_rate,
        hop_duration=hop / signal.sample_rate,
    )


def stft_seconds(
    signal: Signal,
    window_seconds: float,
    overlap: float = 0.5,
    window: str = "hann",
    detrend: bool = True,
) -> SpectrumSequence:
    """Like :func:`stft` with the window given in seconds (paper: 0.1 ms)."""
    window_samples = int(round(window_seconds * signal.sample_rate))
    return stft(signal, window_samples, overlap, window, detrend)


def _transform_frames(
    frames: np.ndarray,
    is_complex: bool,
    taper: np.ndarray,
    detrend: bool,
    fold: bool,
    window_samples: int,
    sample_rate: float,
):
    """Per-window spectral transform shared by :func:`stft` and
    :class:`StreamingStft`.

    Every operation here is per-row (mean removal, taper, FFT, magnitude,
    fold), so transforming a subset of a capture's windows produces
    bit-identical spectra to transforming all of them at once -- the
    property the streaming engine's batch-equality guarantee rests on.
    """
    if detrend:
        # Remove each frame's mean BEFORE tapering: subtracting after
        # tapering leaves a taper-shaped residual that leaks into the
        # lowest bins and can outweigh genuine loop peaks.
        frames = frames - frames.mean(axis=1, keepdims=True)
    frames = frames * taper
    if is_complex:
        spectra = np.fft.fft(frames, axis=1)
        power = np.abs(spectra) ** 2
        if fold:
            power, freqs = _fold_two_sided(power, window_samples, sample_rate)
        else:
            power = np.fft.fftshift(power, axes=1)
            freqs = np.fft.fftshift(
                np.fft.fftfreq(window_samples, 1.0 / sample_rate)
            )
    else:
        spectra = np.fft.rfft(frames, axis=1)
        freqs = np.fft.rfftfreq(window_samples, 1.0 / sample_rate)
        power = np.abs(spectra) ** 2
    return power, freqs


def _fold_two_sided(
    power: np.ndarray, window_samples: int, sample_rate: float
):
    """Fold an unshifted two-sided power spectrum onto [0, Nyquist]."""
    n = window_samples
    half = n // 2
    folded = np.empty((power.shape[0], half + 1))
    folded[:, 0] = power[:, 0]
    # Positive bins 1..half-1 pair with negative bins n-1..half+1.
    folded[:, 1:half] = power[:, 1:half] + power[:, n - 1: half: -1]
    folded[:, half] = power[:, half]
    freqs = np.arange(half + 1) * (sample_rate / n)
    return folded, freqs


def window_quality(
    signal: Signal,
    window_samples: int,
    overlap: float = 0.5,
    clip_fraction: float = 0.01,
    gap_samples: int = 16,
    dead_fraction: float = 0.9,
    energy_outlier_mads: float = 8.0,
) -> np.ndarray:
    """Per-window acquisition-quality flags aligned with :func:`stft`.

    Computed from the raw samples, before any spectral processing, so a
    corrupted window is flagged regardless of what its (garbage) spectrum
    happens to look like. Returns a uint8 bitmask per window (``QF_*``).

    Detection criteria:

    - *clipped* (``QF_CLIPPED``): at least ``clip_fraction`` of the
      window's samples sit at the capture's amplitude rails (within 0.1%
      of the global max of |I| / |Q|). A clean capture puts only its
      single largest sample there; a saturated ADC piles samples up.
    - *gapped* (``QF_GAPPED``): the window contains a run of at least
      ``gap_samples`` consecutive exact zeros -- the signature of a
      zero-filled overflow gap (noise makes exact zeros vanishingly rare
      otherwise).
    - *dead* (``QF_DEAD``): at least ``dead_fraction`` of the window is
      exact zeros (front-end dropout).
    - *energy outlier* (``QF_ENERGY_OUTLIER``): the window's log-energy
      is more than ``energy_outlier_mads`` robust standard deviations
      (scaled MAD over the not-otherwise-flagged windows) from the
      capture's median -- impulsive interference or an AGC gain step.
    """
    if window_samples < 8:
        raise SignalError(f"window_samples must be >= 8, got {window_samples}")
    if not 0.0 <= overlap < 1.0:
        raise SignalError(f"overlap must be in [0, 1), got {overlap}")
    samples = signal.samples
    if len(samples) < window_samples:
        raise SignalError(
            f"signal has {len(samples)} samples, shorter than one window "
            f"({window_samples})"
        )
    hop = max(1, int(round(window_samples * (1.0 - overlap))))
    n_windows = 1 + (len(samples) - window_samples) // hop
    starts = np.arange(n_windows) * hop

    if np.iscomplexobj(samples):
        amp = np.maximum(np.abs(samples.real), np.abs(samples.imag))
        is_zero = samples == 0
    else:
        amp = np.abs(samples)
        is_zero = samples == 0

    flags = np.zeros(n_windows, dtype=np.uint8)

    # Clipping: samples at the capture's rails.
    full_scale = float(amp.max()) if len(amp) else 0.0
    if full_scale > 0:
        at_rail = amp >= 0.999 * full_scale
        rail_counts = _window_sums(at_rail, starts, window_samples)
        flags[rail_counts >= max(2, clip_fraction * window_samples)] |= (
            QF_CLIPPED
        )

    # Gaps and dead windows from exact-zero runs.
    zero_counts = _window_sums(is_zero, starts, window_samples)
    flags[zero_counts >= dead_fraction * window_samples] |= QF_DEAD
    run_len = _zero_run_lengths(is_zero)
    long_run = run_len >= gap_samples
    gap_hits = _window_sums(long_run, starts, window_samples)
    flags[gap_hits > 0] |= QF_GAPPED

    # Energy outliers, robustly referenced to the unflagged windows.
    energy = _window_sums(np.abs(samples) ** 2, starts, window_samples)
    log_e = np.log10(energy + np.finfo(float).tiny)
    baseline = log_e[flags == 0]
    if len(baseline) >= 8:
        median = float(np.median(baseline))
        mad = float(np.median(np.abs(baseline - median)))
        scale = max(1.4826 * mad, 0.02)  # floor: 0.02 decades
        outlier = np.abs(log_e - median) > energy_outlier_mads * scale
        flags[outlier & (flags == 0)] |= QF_ENERGY_OUTLIER

    if OBS.enabled:
        for bit, name in (
            (QF_CLIPPED, "flagged_clipped"),
            (QF_GAPPED, "flagged_gapped"),
            (QF_DEAD, "flagged_dead"),
            (QF_ENERGY_OUTLIER, "flagged_energy_outlier"),
        ):
            hits = int(np.count_nonzero(flags & bit))
            if hits:
                record_count("core.stft", name, hits)
    return flags


def _window_sums(
    values: np.ndarray, starts: np.ndarray, window_samples: int
) -> np.ndarray:
    """Sum of ``values`` over each [start, start + window_samples) window."""
    csum = np.concatenate([[0.0], np.cumsum(values, dtype=float)])
    return csum[starts + window_samples] - csum[starts]


def _zero_run_lengths(is_zero: np.ndarray) -> np.ndarray:
    """At each position, the length of the zero-run ending there (else 0)."""
    nonzero_idx = np.nonzero(~is_zero)[0]
    if len(nonzero_idx) == 0:
        return np.arange(1, len(is_zero) + 1, dtype=np.int64)
    # Index of the most recent nonzero at or before each position.
    prev = np.full(len(is_zero), -1, dtype=np.int64)
    prev[nonzero_idx] = nonzero_idx
    prev = np.maximum.accumulate(prev)
    out = np.arange(len(is_zero), dtype=np.int64) - prev
    out[~is_zero] = 0
    return out


def _taper(name: str, length: int) -> np.ndarray:
    if name == "hann":
        return np.hanning(length)
    if name == "hamming":
        return np.hamming(length)
    if name == "rect":
        return np.ones(length)
    raise SignalError(f"unknown window {name!r}")


class StreamingQuality:
    """Causal, chunked counterpart of :func:`window_quality`.

    Consumes arbitrary-size sample chunks and emits the quality bitmask of
    every window completed by each chunk, in lockstep with
    :class:`StreamingStft`. State is O(1) in the stream length: a residual
    sample buffer shorter than one window plus one chunk, the running
    amplitude rail, the zero-run length carried across the chunk boundary,
    and a bounded ring of recent log-energies.

    Exactness relative to the batch function (which sees the whole capture
    at once):

    - *gapped* / *dead* flags are bit-identical: zero runs only ever look
      backward, and the run length at the chunk boundary is carried over.
    - *clipped* uses the running amplitude maximum instead of the global
      one, so a window early in the stream may miss the flag if the
      capture's true rail only appears later (a fielded receiver knows its
      ADC rail up front and can seed ``full_scale``).
    - *energy outlier* references the median/MAD of the last
      ``baseline_capacity`` unflagged windows instead of the whole
      capture's -- the stationary-capture verdicts agree, and the causal
      version additionally adapts to slow drift.
    """

    def __init__(
        self,
        window_samples: int,
        overlap: float = 0.5,
        clip_fraction: float = 0.01,
        gap_samples: int = 16,
        dead_fraction: float = 0.9,
        energy_outlier_mads: float = 8.0,
        full_scale: Optional[float] = None,
        baseline_capacity: int = 512,
    ) -> None:
        if window_samples < 8:
            raise SignalError(
                f"window_samples must be >= 8, got {window_samples}"
            )
        if not 0.0 <= overlap < 1.0:
            raise SignalError(f"overlap must be in [0, 1), got {overlap}")
        if baseline_capacity < 8:
            raise SignalError("baseline_capacity must be >= 8")
        self._window = window_samples
        self._hop = max(1, int(round(window_samples * (1.0 - overlap))))
        self._clip_fraction = clip_fraction
        self._gap_samples = gap_samples
        self._dead_fraction = dead_fraction
        self._mads = energy_outlier_mads
        self._buffer: Optional[np.ndarray] = None
        self._full_scale = float(full_scale) if full_scale else 0.0
        self._zero_carry = 0
        self._baseline = np.empty(baseline_capacity)
        self._baseline_size = 0
        self._baseline_pos = 0

    def feed(self, samples: np.ndarray) -> np.ndarray:
        """Quality flags of the windows completed by this chunk."""
        samples = np.asarray(samples)
        prev = self._buffer
        if prev is not None and len(prev):
            buf = np.concatenate([prev, samples])
            private = True
        else:
            # Hop-aligned fast path: nothing carried over, so the chunk
            # itself is the working buffer -- no full-chunk copy (the
            # residual tail is copied below, and nothing here mutates
            # ``buf``).
            buf = samples
            private = False
        if np.iscomplexobj(samples) and len(samples):
            amp_new = np.maximum(np.abs(samples.real), np.abs(samples.imag))
        else:
            amp_new = np.abs(samples)
        if len(amp_new):
            self._full_scale = max(self._full_scale, float(amp_new.max()))
        w, hop = self._window, self._hop
        if len(buf) < w:
            self._buffer = buf if private else buf.copy()
            return np.zeros(0, dtype=np.uint8)
        n = 1 + (len(buf) - w) // hop
        starts = np.arange(n) * hop
        region = buf[: (n - 1) * hop + w]
        if np.iscomplexobj(region):
            amp = np.maximum(np.abs(region.real), np.abs(region.imag))
        else:
            amp = np.abs(region)
        is_zero = region == 0

        flags = np.zeros(n, dtype=np.uint8)
        if self._full_scale > 0:
            at_rail = amp >= 0.999 * self._full_scale
            rail_counts = _window_sums(at_rail, starts, w)
            flags[rail_counts >= max(2, self._clip_fraction * w)] |= QF_CLIPPED

        zero_counts = _window_sums(is_zero, starts, w)
        flags[zero_counts >= self._dead_fraction * w] |= QF_DEAD
        run_len = _zero_run_lengths(is_zero)
        if self._zero_carry:
            # Fold the pre-buffer zero run into the leading zero prefix so
            # runs spanning the chunk boundary keep their full length.
            prefix = len(run_len)
            nz = np.nonzero(~is_zero)[0]
            if len(nz):
                prefix = int(nz[0])
            run_len[:prefix] += self._zero_carry
        gap_hits = _window_sums(run_len >= self._gap_samples, starts, w)
        flags[gap_hits > 0] |= QF_GAPPED

        energy = _window_sums(np.abs(region) ** 2, starts, w)
        log_e = np.log10(energy + np.finfo(float).tiny)
        for i in range(n):
            if flags[i]:
                continue
            if self._baseline_size >= 8:
                base = self._baseline[: self._baseline_size]
                median = float(np.median(base))
                mad = float(np.median(np.abs(base - median)))
                scale = max(1.4826 * mad, 0.02)  # floor: 0.02 decades
                if abs(log_e[i] - median) > self._mads * scale:
                    flags[i] |= QF_ENERGY_OUTLIER
            # Like the batch baseline (every not-otherwise-flagged window,
            # outliers included -- the robust statistics absorb them).
            self._baseline[self._baseline_pos] = log_e[i]
            self._baseline_pos = (self._baseline_pos + 1) % len(self._baseline)
            self._baseline_size = min(
                self._baseline_size + 1, len(self._baseline)
            )

        drop = n * hop
        self._zero_carry = int(run_len[drop - 1])
        self._buffer = buf[drop:].copy()
        return flags

    # -- checkpointing -------------------------------------------------------

    def export_state(self) -> tuple:
        """State needed to resume this quality stream elsewhere.

        Returns ``(meta, arrays)`` where ``meta`` is JSON-able and
        ``arrays`` maps names to ndarrays. The baseline ring is exported
        as its defined slots only; ring position and fill are carried in
        ``meta`` so a restored stream continues bit-identically.
        """
        meta = {
            "full_scale": self._full_scale,
            "zero_carry": self._zero_carry,
            "baseline_size": self._baseline_size,
            "baseline_pos": self._baseline_pos,
            "baseline_capacity": len(self._baseline),
            "has_buffer": self._buffer is not None,
        }
        arrays = {
            "baseline": self._baseline[: self._baseline_size].copy(),
        }
        if self._buffer is not None:
            arrays["buffer"] = self._buffer.copy()
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict) -> None:
        """Adopt state exported by :meth:`export_state`."""
        if int(meta["baseline_capacity"]) != len(self._baseline):
            raise SignalError(
                f"quality snapshot has baseline capacity "
                f"{meta['baseline_capacity']}, this stream uses "
                f"{len(self._baseline)}"
            )
        self._full_scale = float(meta["full_scale"])
        self._zero_carry = int(meta["zero_carry"])
        size = int(meta["baseline_size"])
        baseline = np.asarray(arrays["baseline"], dtype=float)
        if len(baseline) != size:
            raise SignalError(
                f"quality snapshot carries {len(baseline)} baseline "
                f"entries but declares {size}"
            )
        self._baseline[:size] = baseline
        self._baseline_size = size
        self._baseline_pos = int(meta["baseline_pos"])
        if meta["has_buffer"]:
            self._buffer = np.array(arrays["buffer"], copy=True)
        else:
            self._buffer = None


class _StagedStft:
    """One chunk staged by :meth:`StreamingStft.begin_feed`: the frames
    awaiting their spectral transform, plus the chunk's completed-window
    bookkeeping (``frames`` is ``None`` when the chunk completed no
    window)."""

    __slots__ = ("frames", "quality_flags", "times", "n")

    def __init__(self, frames, quality_flags, times, n):
        self.frames = frames
        self.quality_flags = quality_flags
        self.times = times
        self.n = n


class StreamingStft:
    """Chunked, stateful counterpart of :func:`stft`.

    Accepts arbitrary-size sample chunks via :meth:`feed` and emits the
    Short-Term Spectra of every window completed so far, carrying the STFT
    tail (the up-to ``window_samples - 1`` samples that belong to
    not-yet-complete windows) across chunk boundaries. Each emitted window
    contains exactly the samples the batch :func:`stft` would have given
    it, and the per-window transform is shared code
    (:func:`_transform_frames`), so streaming spectra are bit-identical to
    batch spectra for any chunking of the same signal.

    Steady-state memory is O(window_samples + chunk), independent of how
    much of the stream has been consumed.
    """

    def __init__(
        self,
        sample_rate: float,
        window_samples: int = 1024,
        overlap: float = 0.5,
        window: str = "hann",
        detrend: bool = True,
        fold: bool = True,
        t0: float = 0.0,
        quality: Optional[StreamingQuality] = None,
    ) -> None:
        if sample_rate <= 0:
            raise SignalError(
                f"sample_rate must be positive, got {sample_rate}"
            )
        if window_samples < 8:
            raise SignalError(
                f"window_samples must be >= 8, got {window_samples}"
            )
        if not 0.0 <= overlap < 1.0:
            raise SignalError(f"overlap must be in [0, 1), got {overlap}")
        self.sample_rate = float(sample_rate)
        self.window_samples = int(window_samples)
        self.hop = max(1, int(round(window_samples * (1.0 - overlap))))
        self.t0 = float(t0)
        self._taper_arr = _taper(window, window_samples)
        self._detrend = detrend
        self._fold = fold
        self._quality = quality
        self._buffer: Optional[np.ndarray] = None
        self._consumed = 0  # absolute sample index of _buffer[0]
        self._is_complex: Optional[bool] = None
        self._freqs: Optional[np.ndarray] = None

    @property
    def pending_samples(self) -> int:
        """Samples buffered but not yet part of a completed window."""
        return 0 if self._buffer is None else len(self._buffer)

    @property
    def samples_seen(self) -> int:
        """Total samples consumed so far (including the pending tail)."""
        return self._consumed + self.pending_samples

    def feed(self, samples: np.ndarray) -> SpectrumSequence:
        """Consume one chunk; return the windows it completed (possibly
        zero of them)."""
        staged = self.begin_feed(np.asarray(samples))
        power = freqs = None
        if staged.n:
            power, freqs = self.transform(staged)
        return self.finish_feed(staged, power, freqs)

    def begin_feed(self, samples: np.ndarray) -> "_StagedStft":
        """Stage one chunk: gather its completed frames and advance the
        stream state, deferring the spectral transform.

        The split lets the fleet kernel pool many sessions' staged frames
        into one :func:`_transform_frames` call (per-row transform, so
        pooling is bit-identical); :meth:`feed` is simply
        ``begin_feed`` + :meth:`transform` + :meth:`finish_feed`.

        When an incoming chunk aligns with the window hop (no residual
        tail carried over), the chunk is processed in place: no
        concatenation and no full-chunk copy -- only the new residual
        tail (under one window of samples) is copied out. The returned
        frames may alias the caller's chunk; nothing downstream mutates
        them.
        """
        if samples.ndim != 1:
            raise SignalError(
                f"chunk must be 1-D, got shape {samples.shape}"
            )
        chunk_complex = np.iscomplexobj(samples)
        if self._is_complex is None:
            self._is_complex = chunk_complex
        elif chunk_complex and not self._is_complex:
            raise SignalError(
                "complex chunk fed into a stream that started real"
            )
        quality_flags = (
            self._quality.feed(samples) if self._quality is not None else None
        )
        prev = self._buffer
        if prev is not None and len(prev):
            buf = np.concatenate([prev, samples])
            private = True
        else:
            buf = samples
            private = False
        w, hop = self.window_samples, self.hop
        n = 1 + (len(buf) - w) // hop if len(buf) >= w else 0
        if n <= 0:
            self._buffer = buf if private else buf.copy()
            return _StagedStft(None, quality_flags, np.empty(0), 0)
        local_starts = np.arange(n) * hop
        frames = np.lib.stride_tricks.sliding_window_view(buf, w)[local_starts]
        starts = self._consumed + local_starts
        times = self.t0 + (starts + w / 2.0) / self.sample_rate
        self._consumed += n * hop
        self._buffer = buf[n * hop:].copy()
        return _StagedStft(frames, quality_flags, times, n)

    def transform(self, staged: "_StagedStft"):
        """Spectral transform of a staged chunk's frames:
        ``(power, freqs)``."""
        return _transform_frames(
            staged.frames, self._is_complex, self._taper_arr, self._detrend,
            self._fold, self.window_samples, self.sample_rate,
        )

    def finish_feed(
        self,
        staged: "_StagedStft",
        power: Optional[np.ndarray],
        freqs: Optional[np.ndarray],
    ) -> SpectrumSequence:
        """Wrap a staged chunk and its (possibly pooled) spectra into the
        chunk's :class:`SpectrumSequence`."""
        if staged.n == 0:
            return self._empty_sequence(staged.quality_flags)
        self._freqs = freqs
        if OBS.enabled:
            record_count("core.stft", "stream_chunks")
            record_count("core.stft", "stream_windows", staged.n)
        return SpectrumSequence(
            freqs=freqs,
            times=staged.times,
            power=power,
            window_duration=self.window_samples / self.sample_rate,
            hop_duration=self.hop / self.sample_rate,
            quality=staged.quality_flags,
        )

    # -- checkpointing -------------------------------------------------------

    def export_state(self) -> tuple:
        """State needed to resume this STFT stream elsewhere.

        Returns ``(meta, arrays)``: the residual sample tail (the carry
        across chunk boundaries), the absolute consumed-sample cursor,
        the real/complex stream mode, and -- when quality gating rides
        along -- the quality stream's state under a ``quality`` namespace.
        ``_freqs`` is deliberately not exported: it is a pure function of
        the config and stream mode, recomputed on the next feed.
        """
        meta = {
            "consumed": self._consumed,
            "is_complex": self._is_complex,
            "has_buffer": self._buffer is not None,
            "has_quality": self._quality is not None,
        }
        arrays = {}
        if self._buffer is not None:
            arrays["buffer"] = self._buffer.copy()
        if self._quality is not None:
            q_meta, q_arrays = self._quality.export_state()
            meta["quality"] = q_meta
            for name, value in q_arrays.items():
                arrays[f"quality.{name}"] = value
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict) -> None:
        """Adopt state exported by :meth:`export_state`."""
        if bool(meta["has_quality"]) != (self._quality is not None):
            raise SignalError(
                "snapshot and stream disagree about quality gating"
            )
        self._consumed = int(meta["consumed"])
        is_complex = meta["is_complex"]
        self._is_complex = None if is_complex is None else bool(is_complex)
        if meta["has_buffer"]:
            self._buffer = np.array(arrays["buffer"], copy=True)
        else:
            self._buffer = None
        self._freqs = None
        if self._quality is not None:
            prefix = "quality."
            q_arrays = {
                name[len(prefix):]: value
                for name, value in arrays.items()
                if name.startswith(prefix)
            }
            self._quality.restore_state(meta["quality"], q_arrays)

    def _empty_sequence(
        self, quality_flags: Optional[np.ndarray]
    ) -> SpectrumSequence:
        freqs = self._freqs
        if freqs is None:
            # No window completed yet; the bin grid is still known from
            # the stream mode and config.
            if self._is_complex and not self._fold:
                freqs = np.fft.fftshift(
                    np.fft.fftfreq(self.window_samples, 1.0 / self.sample_rate)
                )
            else:
                freqs = np.fft.rfftfreq(
                    self.window_samples, 1.0 / self.sample_rate
                )
        return SpectrumSequence(
            freqs=freqs,
            times=np.empty(0),
            power=np.empty((0, len(freqs))),
            window_duration=self.window_samples / self.sample_rate,
            hop_duration=self.hop / self.sample_rate,
            quality=quality_flags,
        )
