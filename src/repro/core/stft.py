"""Short-Term Fourier Transform producing the paper's STS sequence.

EDDIE converts the received signal into overlapping windows and each window
into its spectrum -- a Short-Term Spectrum (STS). All training and
monitoring operates on the resulting sequence (Section 3).

Real signals (simulator power traces) use a one-sided spectrum; complex IQ
(EM captures) use a two-sided, frequency-shifted spectrum so sidebands on
both sides of the carrier are visible, as in the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.types import Signal

__all__ = ["SpectrumSequence", "stft", "stft_seconds"]


@dataclass(frozen=True)
class SpectrumSequence:
    """A sequence of Short-Term Spectra.

    Attributes:
        freqs: bin frequencies in Hz (two-sided and ascending for complex
            input, one-sided for real input).
        times: absolute center time of each window, in seconds.
        power: power spectra, shape ``(n_windows, n_bins)``.
        window_duration: length of each window in seconds.
        hop_duration: time between consecutive window starts in seconds.
    """

    freqs: np.ndarray
    times: np.ndarray
    power: np.ndarray
    window_duration: float
    hop_duration: float

    def __len__(self) -> int:
        return len(self.times)

    @property
    def n_bins(self) -> int:
        return len(self.freqs)

    def window_span(self, index: int) -> tuple:
        """(t_start, t_end) of window ``index``."""
        center = self.times[index]
        half = self.window_duration / 2.0
        return (center - half, center + half)

    def slice(self, start: int, stop: int) -> "SpectrumSequence":
        """A view of windows [start, stop)."""
        return SpectrumSequence(
            freqs=self.freqs,
            times=self.times[start:stop],
            power=self.power[start:stop],
            window_duration=self.window_duration,
            hop_duration=self.hop_duration,
        )


def stft(
    signal: Signal,
    window_samples: int = 1024,
    overlap: float = 0.5,
    window: str = "hann",
    detrend: bool = True,
    fold: bool = True,
) -> SpectrumSequence:
    """Compute the STS sequence of a signal.

    Args:
        signal: real power trace or complex IQ capture.
        window_samples: samples per window.
        overlap: fractional overlap between consecutive windows (the paper
            uses 0.1 ms windows with 50% overlap).
        window: ``'hann'``, ``'hamming'``, or ``'rect'``.
        detrend: subtract each window's mean before transforming, removing
            the (uninformative) DC component of power traces.
        fold: for complex IQ input, add the power at -f onto +f and report
            a one-sided spectrum. The AM envelope is real, so the baseband
            spectrum is conjugate-symmetric and each physical sideband
            appears as a +/-f pair; folding merges the pair into a single
            peak so the K-S dimensions see one observation per sideband
            instead of a randomly-ordered sign pair.
    """
    if window_samples < 8:
        raise SignalError(f"window_samples must be >= 8, got {window_samples}")
    if not 0.0 <= overlap < 1.0:
        raise SignalError(f"overlap must be in [0, 1), got {overlap}")
    samples = signal.samples
    if len(samples) < window_samples:
        raise SignalError(
            f"signal has {len(samples)} samples, shorter than one window "
            f"({window_samples})"
        )

    hop = max(1, int(round(window_samples * (1.0 - overlap))))
    taper = _taper(window, window_samples)
    is_complex = np.iscomplexobj(samples)

    n_windows = 1 + (len(samples) - window_samples) // hop
    starts = np.arange(n_windows) * hop
    # Build a strided view [n_windows, window_samples] without copying.
    frames = np.lib.stride_tricks.sliding_window_view(samples, window_samples)[starts]
    if detrend:
        # Remove each frame's mean BEFORE tapering: subtracting after
        # tapering leaves a taper-shaped residual that leaks into the
        # lowest bins and can outweigh genuine loop peaks.
        frames = frames - frames.mean(axis=1, keepdims=True)
    frames = frames * taper

    if is_complex:
        spectra = np.fft.fft(frames, axis=1)
        power = np.abs(spectra) ** 2
        if fold:
            power, freqs = _fold_two_sided(power, window_samples, signal.sample_rate)
        else:
            power = np.fft.fftshift(power, axes=1)
            freqs = np.fft.fftshift(
                np.fft.fftfreq(window_samples, 1.0 / signal.sample_rate)
            )
    else:
        spectra = np.fft.rfft(frames, axis=1)
        freqs = np.fft.rfftfreq(window_samples, 1.0 / signal.sample_rate)
        power = np.abs(spectra) ** 2
    times = signal.t0 + (starts + window_samples / 2.0) / signal.sample_rate
    return SpectrumSequence(
        freqs=freqs,
        times=times,
        power=power,
        window_duration=window_samples / signal.sample_rate,
        hop_duration=hop / signal.sample_rate,
    )


def stft_seconds(
    signal: Signal,
    window_seconds: float,
    overlap: float = 0.5,
    window: str = "hann",
    detrend: bool = True,
) -> SpectrumSequence:
    """Like :func:`stft` with the window given in seconds (paper: 0.1 ms)."""
    window_samples = int(round(window_seconds * signal.sample_rate))
    return stft(signal, window_samples, overlap, window, detrend)


def _fold_two_sided(
    power: np.ndarray, window_samples: int, sample_rate: float
):
    """Fold an unshifted two-sided power spectrum onto [0, Nyquist]."""
    n = window_samples
    half = n // 2
    folded = np.empty((power.shape[0], half + 1))
    folded[:, 0] = power[:, 0]
    # Positive bins 1..half-1 pair with negative bins n-1..half+1.
    folded[:, 1:half] = power[:, 1:half] + power[:, n - 1: half: -1]
    folded[:, half] = power[:, half]
    freqs = np.arange(half + 1) * (sample_rate / n)
    return folded, freqs


def _taper(name: str, length: int) -> np.ndarray:
    if name == "hann":
        return np.hanning(length)
    if name == "hamming":
        return np.hamming(length)
    if name == "rect":
        return np.ones(length)
    raise SignalError(f"unknown window {name!r}")
