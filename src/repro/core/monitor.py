"""EDDIE's monitoring algorithm (Algorithm 1 of the paper).

The monitor consumes the stream of STS peak vectors. For each new STS it
tests, per peak dimension, the last n observations against the current
region's reference set with a two-sample K-S test. Rejections trigger the
candidate check: if a successor region's reference explains the recent
observations, the monitor transitions to it; if no candidate does, an
anomaly counter grows, and a streak longer than ``report_threshold``
produces an anomaly report. Acceptance of the current region resets both
counters (tolerating isolated deviant STSs from interrupts and other
system activity).

With ``EddieConfig.quality_gating`` enabled the monitor is additionally
acquisition-fault aware (DESIGN.md D14): STSs whose windows carry quality
flags (clipped / gapped / dead / energy-outlier) are *unscorable* -- they
are excluded from the K-S history and the anomaly streak suspends across
them instead of counting them as rejections. After a gap or dead stretch
the region belief is stale, so the monitor clears its history and
re-enters region search with a bounded retry budget; if it cannot
reacquire any region within ``resync_timeout`` scorable windows it
escalates a ``desync`` report and resumes best-effort monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import EddieModel, RegionProfile
from repro.core.peaks import peak_matrix
from repro.core.stats import (
    kolmogorov_sf,
    ks_critical_value,
    ks_statistic_batch,
    two_sample_reject,
)
from repro.core.stft import QF_DEAD, QF_GAPPED, QF_UNSCORABLE, stft, window_quality
from repro.errors import MonitoringError
from repro.obs import OBS, counter, histogram
from repro.types import Signal

# Bin edges for the manifests' distribution summaries (fixed at module
# level so snapshots from worker processes merge bin-by-bin).
_PEAK_COUNT_EDGES = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)
_PVALUE_EDGES = (0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9)

__all__ = ["AnomalyReport", "MonitorResult", "Monitor"]


class _SortedDimHistory:
    """Sorted multiset of one peak dimension's recent observations.

    The monitor's rolling history used to be re-sorted per K-S test (once
    per dimension per STS). This structure keeps the last ``capacity``
    pushes' non-NaN observations of one dimension permanently sorted,
    with each value's push index alongside: one searchsorted insert plus
    an in-place tail shift per push, and "the last n observations,
    sorted" is a boolean mask over the already-sorted values -- no sort
    on any query. Expired values are never evicted individually (the age
    mask already excludes them); the buffer is over-allocated 2x and
    compacted with one vectorized mask when full, so expiry costs
    amortized O(1) numpy calls per push.
    """

    __slots__ = ("_values", "_ages", "_size", "_window")

    def __init__(self, capacity: int) -> None:
        # Preallocated: inserts shift a contiguous tail in place (C-speed
        # slice moves) instead of reallocating per push.
        self._window = capacity
        self._values = np.empty(2 * capacity, dtype=float)
        self._ages = np.empty(2 * capacity, dtype=np.int64)
        self._size = 0

    def insert(self, value: float, age: int) -> None:
        size = self._size
        values, ages = self._values, self._ages
        if size == len(values):
            # Compact: keep only values still inside the rolling window
            # (at most window-1 of them, so this always frees space).
            live = ages[:size] > age - self._window
            size = int(live.sum())
            values[:size] = values[: len(live)][live]
            ages[:size] = ages[: len(live)][live]
        pos = values[:size].searchsorted(value)
        values[pos + 1 : size + 1] = values[pos:size]
        ages[pos + 1 : size + 1] = ages[pos:size]
        values[pos] = value
        ages[pos] = age
        self._size = size + 1

    def query(self, min_age: int) -> np.ndarray:
        """Values pushed at or after ``min_age``, in sorted order."""
        values = self._values[: self._size]
        return values[self._ages[: self._size] >= min_age]

    def export_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """The occupied slots (values and ages), stale entries included.

        Exporting the stale-but-not-yet-compacted entries too means a
        restored buffer compacts at exactly the same push as the original
        would have -- the restored monitor is state-equal, not merely
        behavior-equal.
        """
        return (
            self._values[: self._size].copy(),
            self._ages[: self._size].copy(),
        )

    def restore_state(self, values: np.ndarray, ages: np.ndarray) -> None:
        size = len(values)
        if size > len(self._values) or size != len(ages):
            raise MonitoringError(
                f"dim-history snapshot carries {size} values for a buffer "
                f"of capacity {len(self._values)}"
            )
        self._values[:size] = values
        self._ages[:size] = ages
        self._size = size


@dataclass(frozen=True)
class AnomalyReport:
    """One anomaly reported to the user.

    ``kind`` is ``'anomaly'`` for Algorithm-1 reports and ``'desync'``
    when the monitor lost the region state machine after an acquisition
    gap and could not reacquire within its retry budget. A desync is an
    operational escalation ("re-check this device"), not a detection.
    """

    time: float
    region: str
    streak: int
    kind: str = "anomaly"


@dataclass
class MonitorResult:
    """Everything one monitoring pass produces.

    Attributes:
        times: center time of every STS processed.
        tracked: the monitor's current-region belief at every STS.
        reports: anomaly reports, in time order.
        rejection_flags: whether the current region's test rejected at
            each STS (before candidate resolution).
        group_sizes: group size in effect at each STS (for group-span
            bookkeeping in metrics).
        unscorable_flags: per-STS mask of windows skipped as unscorable
            (quality gating; all False when gating is off).
        quality: the per-window quality bitmasks, when computed.
        report_indices: STS index of each report, aligned with
            ``reports``; ``None`` for results built step-by-step.
        status: ``'ok'``, or ``'degraded'`` when so much of the run was
            unscorable that the monitoring verdict is not meaningful.
    """

    times: np.ndarray
    tracked: List[str]
    reports: List[AnomalyReport]
    rejection_flags: np.ndarray
    group_sizes: np.ndarray
    unscorable_flags: Optional[np.ndarray] = None
    quality: Optional[np.ndarray] = None
    report_indices: Optional[List[int]] = None
    status: str = "ok"

    @property
    def reported_mask(self) -> np.ndarray:
        """Boolean per-STS mask of report firings."""
        mask = np.zeros(len(self.times), dtype=bool)
        if self.report_indices is not None:
            mask[np.asarray(self.report_indices, dtype=int)] = True
            return mask
        if not self.reports or len(self.times) == 0:
            return mask
        # Fallback for hand-built results: tolerant float matching (exact
        # `t in set` comparison broke on times reconstructed through
        # different arithmetic).
        report_times = np.array([r.time for r in self.reports])
        return np.isclose(
            self.times[:, None], report_times[None, :],
            rtol=1e-9, atol=1e-12,
        ).any(axis=1)

    @property
    def unscorable_fraction(self) -> float:
        """Share of STSs skipped as unscorable."""
        if self.unscorable_flags is None or len(self.times) == 0:
            return 0.0
        return float(np.mean(self.unscorable_flags))

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    @classmethod
    def concat(
        cls,
        results: Sequence["MonitorResult"],
        max_unscorable_fraction: Optional[float] = None,
    ) -> "MonitorResult":
        """Merge per-chunk results (e.g. from ``StreamingMonitor.feed``)
        into one stream-wide result.

        ``report_indices`` are re-based from chunk-local to stream-global.
        ``status`` is recomputed over the merged unscorable flags when
        ``max_unscorable_fraction`` is given; otherwise the last chunk's
        status (which the streaming engine already computes cumulatively)
        carries over.
        """
        if not results:
            return cls(
                times=np.empty(0),
                tracked=[],
                reports=[],
                rejection_flags=np.zeros(0, dtype=bool),
                group_sizes=np.zeros(0, dtype=int),
                unscorable_flags=np.zeros(0, dtype=bool),
                report_indices=[],
            )
        tracked: List[str] = []
        reports: List[AnomalyReport] = []
        report_indices: List[int] = []
        offset = 0
        for r in results:
            tracked.extend(r.tracked)
            reports.extend(r.reports)
            if r.report_indices is not None:
                report_indices.extend(i + offset for i in r.report_indices)
            offset += len(r.times)
        quality = None
        if all(r.quality is not None for r in results):
            quality = np.concatenate([r.quality for r in results])
        unscorable = np.concatenate([
            r.unscorable_flags
            if r.unscorable_flags is not None
            else np.zeros(len(r.times), dtype=bool)
            for r in results
        ])
        status = results[-1].status
        if max_unscorable_fraction is not None:
            degraded = (
                len(unscorable)
                and unscorable.mean() >= max_unscorable_fraction
            )
            status = "degraded" if degraded else "ok"
        return cls(
            times=np.concatenate([r.times for r in results]),
            tracked=tracked,
            reports=reports,
            rejection_flags=np.concatenate(
                [r.rejection_flags for r in results]
            ),
            group_sizes=np.concatenate([r.group_sizes for r in results]),
            unscorable_flags=unscorable,
            quality=quality,
            report_indices=report_indices,
            status=status,
        )


class Monitor:
    """A stateful Algorithm-1 monitor for one trained model.

    ``batched`` (the default) enables the vectorized hot path: per-dim
    sorted reference arrays are precomputed once per region profile, the
    rolling history is maintained as incrementally sorted per-dimension
    buffers, and all tested dimensions of a window are scored through one
    :func:`ks_statistic_batch` call. The statistic is computed in exact
    integer arithmetic on both paths, so batched and unbatched monitors
    produce bit-identical results (asserted by the equivalence tests);
    the unbatched path is retained as the reference implementation.
    """

    def __init__(self, model: EddieModel, batched: bool = True) -> None:
        self.model = model
        self._cfg = model.config
        history_len = max(model.max_group_size, 2)
        self._width = self._cfg.max_peaks + (
            2 if self._cfg.diffuse_features else 0
        )
        self._history = np.full((history_len, self._width), np.nan)
        self._hist_pos = 0
        self._filled = 0
        self._batched = bool(batched)
        self._push_count = 0
        # Sorted buffers are only maintained for dimensions some profile
        # can test (plus dim 0, probed by the peak-less-region logic); the
        # remaining peak columns are never queried through _recent.
        tracked: set = {0}
        for profile in model.profiles.values():
            profile.precompute_references()
            tracked.update(profile.test_dims)
        self._tracked_dims: Tuple[int, ...] = tuple(
            d for d in sorted(tracked) if d < self._width
        )
        self._buffers: Dict[int, _SortedDimHistory] = {
            d: _SortedDimHistory(history_len) for d in self._tracked_dims
        }
        self.current_region: str = model.initial_regions[0]
        self._anomaly_count = 0
        self._change_counts: Dict[str, int] = {}
        self._streak = 0
        # Quality-gating state (DESIGN.md D14).
        self._gap_pending = False
        self._resync_remaining: Optional[int] = None
        self.last_unscorable = False
        # Scaled K-S statistics D * sqrt(mn/(m+n)) buffered by _score_dims
        # when observability is on; run_peaks flushes them through one
        # vectorized kolmogorov_sf call into the p-value histogram.
        self._ks_scaled_stats: List[float] = []

    # -- driving ------------------------------------------------------------

    def run_signal(self, signal: Signal) -> MonitorResult:
        """Monitor a raw captured signal end to end.

        The signal's STS peak stream (peaks, times, quality flags) is a
        pure function of the samples and the front-end config, so with an
        artifact cache configured (:mod:`repro.cache`) it is memoized and
        repeated monitoring passes -- group-size sweeps, re-runs of a
        warm experiment -- skip the STFT and peak extraction entirely.
        """
        from repro.cache import get_cache, sts_fingerprint

        cfg = self._cfg
        cache = get_cache()
        key = None
        if cache is not None:
            key = sts_fingerprint(signal, cfg)
            cached = cache.get_sts(key)
            if cached is not None:
                peaks, times, quality = cached
                return self.run_peaks(peaks, times, quality=quality)
        spectra = stft(signal, cfg.window_samples, cfg.overlap)
        peaks = peak_matrix(spectra, cfg.energy_fraction, cfg.max_peaks,
                            cfg.peak_prominence, cfg.diffuse_features)
        quality = None
        if cfg.quality_gating:
            quality = window_quality(
                signal, cfg.window_samples, cfg.overlap,
                clip_fraction=cfg.clip_fraction,
                gap_samples=cfg.gap_samples,
                dead_fraction=cfg.dead_fraction,
                energy_outlier_mads=cfg.energy_outlier_mads,
            )
        if key is not None:
            cache.put_sts(key, peaks, spectra.times, quality)
        return self.run_peaks(peaks, spectra.times, quality=quality)

    def run_peaks(
        self,
        peaks: np.ndarray,
        times: np.ndarray,
        quality: Optional[np.ndarray] = None,
    ) -> MonitorResult:
        """Monitor a pre-extracted peak matrix.

        ``quality`` is an optional per-window bitmask from
        :func:`repro.core.stft.window_quality`; it only has an effect when
        the model's config enables ``quality_gating``.
        """
        if peaks.shape[0] != len(times):
            raise MonitoringError(
                f"{peaks.shape[0]} peak rows for {len(times)} timestamps"
            )
        if peaks.shape[1] < self._width:
            raise MonitoringError(
                f"peak matrix width {peaks.shape[1]} below the configured "
                f"width {self._width} (max_peaks plus descriptor columns)"
            )
        if quality is not None and len(quality) != len(times):
            raise MonitoringError(
                f"{len(quality)} quality flags for {len(times)} timestamps"
            )
        tracked: List[str] = []
        reports: List[AnomalyReport] = []
        report_indices: List[int] = []
        rejection_flags = np.zeros(len(times), dtype=bool)
        unscorable_flags = np.zeros(len(times), dtype=bool)
        group_sizes = np.zeros(len(times), dtype=int)
        for i in range(len(times)):
            q = int(quality[i]) if quality is not None else 0
            report, rejected = self.step(peaks[i], float(times[i]), quality=q)
            tracked.append(self.current_region)
            rejection_flags[i] = rejected
            unscorable_flags[i] = self.last_unscorable
            group_sizes[i] = self.model.profile(self.current_region).group_size
            if report is not None:
                reports.append(report)
                report_indices.append(i)
        n = len(times)
        status = "ok"
        if n and unscorable_flags.mean() >= self._cfg.max_unscorable_fraction:
            status = "degraded"
        if OBS.enabled:
            self._flush_obs_windows(
                peaks, tracked, reports, rejection_flags, unscorable_flags
            )
            self._flush_obs_run(status)
        return MonitorResult(
            times=np.asarray(times, dtype=float),
            tracked=tracked,
            reports=reports,
            rejection_flags=rejection_flags,
            group_sizes=group_sizes,
            unscorable_flags=unscorable_flags,
            quality=quality,
            report_indices=report_indices,
            status=status,
        )

    def _flush_obs_windows(
        self,
        peaks: np.ndarray,
        tracked: List[str],
        reports: List[AnomalyReport],
        rejection_flags: np.ndarray,
        unscorable_flags: np.ndarray,
    ) -> None:
        """Fold a batch of monitoring events into the metrics registry.

        Counters are accumulated locally inside the per-STS loop (plain
        Python state) and flushed here in one pass per run -- or once per
        chunk on the streaming path -- so the enabled-mode overhead stays
        a handful of instrument calls per trace rather than several per
        window.
        """
        n = len(tracked)
        unscorable = int(unscorable_flags.sum())
        counter("core.monitor", "windows_scored").inc(n - unscorable)
        counter("core.monitor", "windows_unscorable").inc(unscorable)
        anomalies = sum(1 for r in reports if r.kind == "anomaly")
        counter("core.monitor", "reports_anomaly").inc(anomalies)
        counter("core.monitor", "reports_desync").inc(len(reports) - anomalies)
        # K-S rejections by region: the region the monitor believed it was
        # in when the current-region test rejected.
        by_region: Dict[str, int] = {}
        for i in np.flatnonzero(rejection_flags):
            region = tracked[i]
            by_region[region] = by_region.get(region, 0) + 1
        for region, count in by_region.items():
            counter("core.monitor", f"rejections.{region}").inc(count)
        # Distribution summaries for the manifest.
        peak_counts = np.sum(
            ~np.isnan(peaks[:, : self._cfg.max_peaks]), axis=1
        )
        histogram(
            "core.monitor", "sts_peak_count", _PEAK_COUNT_EDGES
        ).record_many(peak_counts)
        if self._ks_scaled_stats:
            pvalues = kolmogorov_sf(np.asarray(self._ks_scaled_stats))
            histogram(
                "core.monitor", "ks_pvalue", _PVALUE_EDGES
            ).record_many(np.atleast_1d(pvalues))
            counter("core.monitor", "ks_tests").inc(
                len(self._ks_scaled_stats)
            )
        self._ks_scaled_stats = []

    def _flush_obs_run(self, status: str) -> None:
        """Run-level counters: once per batch run or stream close."""
        if status == "degraded":
            counter("core.monitor", "runs_degraded").inc()
        counter("core.monitor", "runs_monitored").inc()

    # -- one step of Algorithm 1 ------------------------------------------------

    def step(self, peak_row: np.ndarray, time: float, quality: int = 0):
        """Process one STS; returns (report_or_None, current_test_rejected).

        ``quality`` is the window's acquisition-quality bitmask; with
        quality gating enabled, flagged windows are skipped as unscorable
        (streak suspended) and gap/dead windows additionally invalidate
        the history and schedule a resynchronization.
        """
        self.last_unscorable = False
        if self._cfg.quality_gating and (quality & QF_UNSCORABLE):
            # Unscorable STS: the window's samples were corrupted at
            # acquisition. Do not let its garbage peaks into the history,
            # do not count it as a rejection, and keep the anomaly streak
            # frozen (neither grown nor reset) until scoring resumes.
            self.last_unscorable = True
            if quality & (QF_GAPPED | QF_DEAD):
                self._gap_pending = True
            return None, False

        if self._gap_pending:
            # First scorable STS after a gap: execution continued while we
            # were blind, so both the history and the region belief are
            # stale. Start over: clear the history and re-enter region
            # search with a bounded budget.
            self._gap_pending = False
            self._filled = 0
            self._anomaly_count = 0
            self._change_counts.clear()
            self._streak = 0
            if any(p.testable() for p in self.model.profiles.values()):
                self._resync_remaining = self._cfg.resync_timeout

        self._push(peak_row)

        if self._resync_remaining is not None:
            return self._resync_step(time)

        profile = self.model.profile(self.current_region)
        candidates = self.model.candidate_regions(self.current_region)

        if not profile.testable():
            # Peak-less region (e.g. GSM's hot loop): there is no reference
            # to test against, but the region *expects no peaks*. First try
            # to recognize a legal move to a successor; failing that,
            # persistent peaks that no successor explains are anomalous --
            # otherwise any injection arriving while the monitor sits in a
            # peak-less region would be invisible.
            if self._maybe_switch_from_untestable(candidates):
                return None, False
            mon = self._recent(profile.group_size, 0)
            if mon is None:
                self._anomaly_count = 0
                self._streak = 0
                return None, False
            self._anomaly_count += 1
            self._streak += 1
            if self._anomaly_count > self._cfg.report_threshold:
                report = AnomalyReport(
                    time=time, region=self.current_region, streak=self._streak
                )
                self._anomaly_count = 0
                return report, True
            return None, True

        any_reject = False
        rejecting_dims = 0
        explained_dims: Dict[str, int] = {}
        mons = {
            dim: self._recent(profile.group_size, dim)
            for dim in profile.test_dims
        }
        rejected_dims = self._score_dims(profile, mons)
        for dim in profile.test_dims:
            mon = mons[dim]
            if mon is None:
                if dim == 0 and profile.num_peaks > 0 and self._filled >= profile.group_size:
                    # The history is full but the expected peaks are simply
                    # absent. Injections whose cache misses smear the loop's
                    # period erase its peaks entirely -- silence here would
                    # let exactly the paper's "off-chip activity" injections
                    # (Section 5.7) go unseen. A region legitimately without
                    # peaks can still explain it (candidate with no peaks).
                    any_reject = True
                    peakless = [
                        c for c in candidates
                        if not self.model.profile(c).testable()
                    ]
                    if peakless:
                        for cand_name in peakless:
                            self._change_counts[cand_name] = (
                                self._change_counts.get(cand_name, 0) + 1
                            )
                    else:
                        self._anomaly_count += 1
                continue
            if not rejected_dims[dim]:
                continue
            any_reject = True
            rejecting_dims += 1
            explained = False
            for cand_name in candidates:
                cand = self.model.profile(cand_name)
                if not cand.testable() or dim not in cand.test_dims:
                    continue
                # Probe the candidate with a group bounded by the current
                # region's n: right after a transition the history still
                # contains old-region STSs, and a full-size candidate group
                # would keep rejecting long enough to fake an anomaly.
                probe = min(cand.group_size, profile.group_size)
                if self._candidate_accepts(cand, dim, probe):
                    explained_dims[cand_name] = (
                        explained_dims.get(cand_name, 0) + 1
                    )
                    explained = True
            if not explained:
                self._anomaly_count += 1

        # A candidate earns one change "vote" per step in which it explains
        # at least change_fraction of the rejecting dimensions. Requiring
        # several such steps (below) keeps one stochastic rejection from
        # flipping the tracked region.
        if rejecting_dims:
            need = max(1, int(np.ceil(self._cfg.change_fraction * rejecting_dims)))
            for cand_name, explained_count in explained_dims.items():
                if explained_count >= need:
                    self._change_counts[cand_name] = (
                        self._change_counts.get(cand_name, 0) + 1
                    )

        if not any_reject:
            self._anomaly_count = 0
            self._change_counts.clear()
            self._streak = 0
            return None, False

        self._streak += 1

        # Region transition once a candidate has explained the rejections
        # for several consecutive-rejection steps.
        if self._change_counts:
            best = max(self._change_counts, key=self._change_counts.get)
            if self._change_counts[best] >= self._cfg.change_steps:
                self._transition_to(best)
                return None, True

        # Anomaly?
        if self._anomaly_count > self._cfg.report_threshold:
            report = AnomalyReport(
                time=time, region=self.current_region, streak=self._streak
            )
            self._anomaly_count = 0
            return report, True

        return None, True

    # -- checkpointing -------------------------------------------------------

    def export_state(self) -> Tuple[dict, dict]:
        """Full Algorithm-1 state as ``(meta, arrays)``.

        Everything :meth:`step` reads or writes is covered: the rolling
        history matrix and its cursor, the per-dimension sorted buffers,
        the region belief, and every counter of the anomaly / transition /
        quality state machines. ``_ks_scaled_stats`` is observability-only
        and flushed per chunk on the streaming path, so it is reset rather
        than carried.
        """
        meta = {
            "hist_pos": self._hist_pos,
            "filled": self._filled,
            "push_count": self._push_count,
            "current_region": self.current_region,
            "anomaly_count": self._anomaly_count,
            "change_counts": dict(self._change_counts),
            "streak": self._streak,
            "gap_pending": self._gap_pending,
            "resync_remaining": self._resync_remaining,
            "last_unscorable": self.last_unscorable,
            "tracked_dims": list(self._tracked_dims),
        }
        arrays = {"history": self._history.copy()}
        for dim, buf in self._buffers.items():
            values, ages = buf.export_state()
            arrays[f"dim{dim}.values"] = values
            arrays[f"dim{dim}.ages"] = ages
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict) -> None:
        """Adopt state exported by :meth:`export_state`.

        The receiving monitor must be built from the same model/config
        (callers verify via the config fingerprint); here we only check
        the structural invariants that would otherwise corrupt state
        silently.
        """
        if tuple(meta["tracked_dims"]) != self._tracked_dims:
            raise MonitoringError(
                f"monitor snapshot tracks dims {meta['tracked_dims']}, "
                f"this model tracks {list(self._tracked_dims)}"
            )
        history = np.asarray(arrays["history"], dtype=float)
        if history.shape != self._history.shape:
            raise MonitoringError(
                f"monitor snapshot history shape {history.shape} does not "
                f"match this model's {self._history.shape}"
            )
        self._history[...] = history
        self._hist_pos = int(meta["hist_pos"])
        self._filled = int(meta["filled"])
        self._push_count = int(meta["push_count"])
        self.current_region = str(meta["current_region"])
        self._anomaly_count = int(meta["anomaly_count"])
        self._change_counts = {
            str(k): int(v) for k, v in dict(meta["change_counts"]).items()
        }
        self._streak = int(meta["streak"])
        self._gap_pending = bool(meta["gap_pending"])
        resync = meta["resync_remaining"]
        self._resync_remaining = None if resync is None else int(resync)
        self.last_unscorable = bool(meta["last_unscorable"])
        for dim in self._tracked_dims:
            self._buffers[dim].restore_state(
                np.asarray(arrays[f"dim{dim}.values"], dtype=float),
                np.asarray(arrays[f"dim{dim}.ages"], dtype=np.int64),
            )
        self._ks_scaled_stats = []

    # -- resynchronization after acquisition gaps ---------------------------

    def _resync_step(self, time: float):
        """One region-search step after a gap; returns (report, rejected)."""
        if self._try_reacquire():
            self._resync_remaining = None
            return None, False
        self._resync_remaining -= 1
        if self._resync_remaining <= 0:
            # Could not place the execution anywhere in the state machine
            # within the budget: escalate, then resume best-effort
            # monitoring from the current belief rather than staying
            # silent forever.
            self._resync_remaining = None
            report = AnomalyReport(
                time=time,
                region=self.current_region,
                streak=self._cfg.resync_timeout,
                kind="desync",
            )
            return report, False
        return None, False

    def _try_reacquire(self) -> bool:
        """Search all regions for one whose reference explains the recent
        post-gap STSs; prefers the pre-gap belief for continuity."""
        if self._filled < self._cfg.min_mon_values:
            return False
        order = [self.current_region] + [
            r for r in self.model.profiles if r != self.current_region
        ]
        for name in order:
            prof = self.model.profile(name)
            if not prof.testable():
                continue
            n = min(prof.group_size, self._filled)
            tail = self._history_tail(n)
            tested = 0
            accepted = 0
            for dim in prof.test_dims:
                values = tail[:, dim]
                values = values[~np.isnan(values)]
                if len(values) < self._cfg.min_mon_values:
                    continue
                tested += 1
                if not self._rejects(prof, dim, values):
                    accepted += 1
            if tested and accepted >= max(
                1, int(np.ceil(self._cfg.change_fraction * tested))
            ):
                # Unlike a tracked transition, the history here is all
                # post-gap and belongs to the reacquired region: keep it.
                self._reacquire(name)
                return True
        # A consistently peak-less post-gap stream is explained by a
        # peak-less region, if the model has one (the paper's GSM loop).
        recent = self._history_tail(self._filled)[:, : self._width]
        if np.all(np.isnan(recent)):
            for name in order:
                if not self.model.profile(name).testable():
                    self._reacquire(name)
                    return True
        return False

    def _reacquire(self, region: str) -> None:
        self.current_region = region
        self._anomaly_count = 0
        self._change_counts.clear()
        self._streak = 0

    # -- internals ------------------------------------------------------------

    def _push(self, peak_row: np.ndarray) -> None:
        row = np.full(self._width, np.nan)
        usable = min(len(peak_row), self._width)
        row[:usable] = peak_row[:usable]
        if self._batched:
            for dim in self._tracked_dims:
                value = row[dim]
                if value == value:  # not NaN
                    self._buffers[dim].insert(value, self._push_count)
        # Circular write: np.roll here used to copy the whole history
        # matrix on every push.
        self._history[self._hist_pos] = row
        self._hist_pos = (self._hist_pos + 1) % self._history.shape[0]
        self._filled = min(self._filled + 1, self._history.shape[0])
        self._push_count += 1

    def _history_tail(self, n: int) -> np.ndarray:
        """The last ``n`` pushed rows in chronological order.

        Callers must keep ``n <= self._filled`` (they all gate on it).
        Only the slow paths (the unbatched reference monitor, candidate
        probing fallbacks, post-gap reacquisition) materialize this view;
        the batched hot path reads the sorted per-dim buffers instead.
        """
        size = self._history.shape[0]
        n = min(n, size)
        idx = (self._hist_pos - n + np.arange(n)) % size
        return self._history[idx]

    def _recent(self, n: int, dim: int) -> Optional[np.ndarray]:
        """Last up-to-n non-NaN observations of one peak dimension.

        On the batched path the values come back sorted (from the
        incrementally maintained sorted buffers); on the reference path
        they are chronological. Both two-sample tests are order-invariant,
        so downstream decisions are identical.
        """
        if self._filled < n:
            return None
        if self._batched and dim in self._buffers:
            values = self._buffers[dim].query(self._push_count - n)
        else:
            values = self._history_tail(n)[:, dim]
            values = values[~np.isnan(values)]
        if len(values) < self._cfg.min_mon_values:
            return None
        return values

    def _score_dims(
        self,
        profile: RegionProfile,
        mons: Dict[int, Optional[np.ndarray]],
    ) -> Dict[int, bool]:
        """Rejection decision for every tested dimension of one window.

        On the batched path all K-S-testable dimensions are scored in one
        :func:`ks_statistic_batch` call against the profile's precomputed
        sorted references; otherwise (reference path, or the U-test
        alternative) each dimension runs through
        :func:`~repro.core.stats.two_sample_reject` as before.
        """
        rejected: Dict[int, bool] = {}
        batch_dims: List[int] = []
        batch_refs: List[np.ndarray] = []
        batch_mons: List[np.ndarray] = []
        batch_runs: List[Tuple[np.ndarray, np.ndarray]] = []
        for dim, mon in mons.items():
            if mon is None:
                rejected[dim] = False
                continue
            ref = profile.reference_dim(dim)
            if len(ref) == 0:
                rejected[dim] = False
                continue
            if self._batched and self._cfg.statistic == "ks":
                batch_dims.append(dim)
                batch_refs.append(ref)
                batch_mons.append(mon)
                batch_runs.append(profile.reference_dim_runs(dim))
            else:
                rejected[dim] = two_sample_reject(
                    ref, mon, self._cfg.alpha, self._cfg.statistic
                )
        if batch_dims:
            stats = ks_statistic_batch(batch_refs, batch_mons, batch_runs)
            for dim, ref, mon, d_stat in zip(
                batch_dims, batch_refs, batch_mons, stats
            ):
                rejected[dim] = bool(
                    d_stat > ks_critical_value(len(ref), len(mon), self._cfg.alpha)
                )
            if OBS.enabled:
                # Buffer D * sqrt(mn/(m+n)); the run-level flush turns the
                # whole buffer into asymptotic p-values in one shot.
                for ref, mon, d_stat in zip(batch_refs, batch_mons, stats):
                    m, k = len(ref), len(mon)
                    self._ks_scaled_stats.append(
                        float(d_stat) * (m * k / (m + k)) ** 0.5
                    )
        return rejected

    def _rejects(self, profile: RegionProfile, dim: int, mon: np.ndarray) -> bool:
        ref = profile.reference_dim(dim)
        if len(ref) == 0:
            return False
        ref_runs = (
            profile.reference_dim_runs(dim)
            if self._cfg.statistic == "ks"
            else None
        )
        return two_sample_reject(
            ref, mon, self._cfg.alpha, self._cfg.statistic, ref_runs
        )

    def _candidate_accepts(self, cand: RegionProfile, dim: int, probe: int) -> bool:
        """Whether a successor region's reference explains recent STSs.

        Accepts if either the bounded probe group or its fresh suffix (the
        most recent few STSs) passes -- the suffix covers the moment just
        after a transition when older history is still mixed.
        """
        mon = self._recent(probe, dim)
        if mon is not None and not self._rejects(cand, dim, mon):
            return True
        suffix = self._recent(max(2, self._cfg.min_mon_values), dim)
        return suffix is not None and not self._rejects(cand, dim, suffix)

    def _maybe_switch_from_untestable(self, candidates: Sequence[str]) -> bool:
        """Try to recognize a successor region from a peak-less one.

        Returns True when a transition happened.
        """
        for cand_name in candidates:
            cand = self.model.profile(cand_name)
            if not cand.testable():
                continue
            accepted = 0
            tested = 0
            for dim in cand.test_dims:
                mon = self._recent(cand.group_size, dim)
                if mon is None:
                    continue
                tested += 1
                if not self._rejects(cand, dim, mon):
                    accepted += 1
            if tested and accepted >= max(
                1, int(np.ceil(self._cfg.change_fraction * tested))
            ):
                self._transition_to(cand_name)
                return True
        return False

    def _transition_to(self, region: str) -> None:
        self.current_region = region
        self._anomaly_count = 0
        self._change_counts.clear()
        self._streak = 0
        # Most of the history was gathered in the previous region and is
        # stale for the new region's tests -- but the newest few STSs are
        # what triggered the transition, so keep those and re-fill the
        # rest before testing resumes.
        self._filled = min(self._filled, self._cfg.min_mon_values)
