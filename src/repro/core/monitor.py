"""EDDIE's monitoring algorithm (Algorithm 1 of the paper).

The monitor consumes the stream of STS peak vectors. For each new STS it
tests, per peak dimension, the last n observations against the current
region's reference set with a two-sample K-S test. Rejections trigger the
candidate check: if a successor region's reference explains the recent
observations, the monitor transitions to it; if no candidate does, an
anomaly counter grows, and a streak longer than ``report_threshold``
produces an anomaly report. Acceptance of the current region resets both
counters (tolerating isolated deviant STSs from interrupts and other
system activity).

With ``EddieConfig.quality_gating`` enabled the monitor is additionally
acquisition-fault aware (DESIGN.md D14): STSs whose windows carry quality
flags (clipped / gapped / dead / energy-outlier) are *unscorable* -- they
are excluded from the K-S history and the anomaly streak suspends across
them instead of counting them as rejections. After a gap or dead stretch
the region belief is stale, so the monitor clears its history and
re-enters region search with a bounded retry budget; if it cannot
reacquire any region within ``resync_timeout`` scorable windows it
escalates a ``desync`` report and resumes best-effort monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import EddieModel, RegionProfile
from repro.core.peaks import peak_matrix
from repro.core.stats import (
    kolmogorov_sf,
    ks_critical_value,
    ks_d_int_rows,
    ks_statistic_batch,
    two_sample_reject,
)
from repro.core.stft import QF_DEAD, QF_GAPPED, QF_UNSCORABLE, stft, window_quality
from repro.errors import MonitoringError
from repro.obs import OBS, counter, histogram
from repro.types import Signal

# Bin edges for the manifests' distribution summaries (fixed at module
# level so snapshots from worker processes merge bin-by-bin).
_PEAK_COUNT_EDGES = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)
_PVALUE_EDGES = (0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9)

__all__ = ["AnomalyReport", "MonitorResult", "Monitor"]


class _SortedDimHistory:
    """Sorted multiset of one peak dimension's recent observations.

    The monitor's rolling history used to be re-sorted per K-S test (once
    per dimension per STS). This structure keeps the last ``capacity``
    pushes' non-NaN observations of one dimension permanently sorted,
    with each value's push index alongside: one searchsorted insert plus
    an in-place tail shift per push, and "the last n observations,
    sorted" is a boolean mask over the already-sorted values -- no sort
    on any query. Expired values are never evicted individually (the age
    mask already excludes them); the buffer is over-allocated 2x and
    compacted with one vectorized mask when full, so expiry costs
    amortized O(1) numpy calls per push.
    """

    __slots__ = ("_values", "_ages", "_size", "_window")

    def __init__(self, capacity: int) -> None:
        # Preallocated: inserts shift a contiguous tail in place (C-speed
        # slice moves) instead of reallocating per push.
        self._window = capacity
        self._values = np.empty(2 * capacity, dtype=float)
        self._ages = np.empty(2 * capacity, dtype=np.int64)
        self._size = 0

    def insert(self, value: float, age: int) -> None:
        size = self._size
        values, ages = self._values, self._ages
        if size == len(values):
            # Compact: keep only values still inside the rolling window
            # (at most window-1 of them, so this always frees space).
            live = ages[:size] > age - self._window
            size = int(live.sum())
            values[:size] = values[: len(live)][live]
            ages[:size] = ages[: len(live)][live]
        pos = values[:size].searchsorted(value)
        values[pos + 1 : size + 1] = values[pos:size]
        ages[pos + 1 : size + 1] = ages[pos:size]
        values[pos] = value
        ages[pos] = age
        self._size = size + 1

    def query(self, min_age: int) -> np.ndarray:
        """Values pushed at or after ``min_age``, in sorted order."""
        values = self._values[: self._size]
        return values[self._ages[: self._size] >= min_age]

    def export_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """The occupied slots (values and ages), stale entries included.

        Exporting the stale-but-not-yet-compacted entries too means a
        restored buffer compacts at exactly the same push as the original
        would have -- the restored monitor is state-equal, not merely
        behavior-equal.
        """
        return (
            self._values[: self._size].copy(),
            self._ages[: self._size].copy(),
        )

    def insert_many(self, values: np.ndarray, ages: np.ndarray) -> None:
        """Bulk insert of chronologically ordered (value, age) pairs.

        One argsort + one merge instead of a searchsorted/tail-shift per
        value -- the fast-path chunk commit pushes a whole chunk's
        observations at once. Placement of equal values relative to
        existing equal values may differ from repeated :meth:`insert`,
        and values already outside every future query window are dropped
        eagerly; :meth:`query` masks by age over sorted values, so query
        results are identical either way (equal values are
        interchangeable, dropped values unreachable).
        """
        k = len(values)
        if k == 0:
            return
        cutoff = int(ages[-1]) - self._window
        fresh = ages > cutoff
        if not fresh.all():
            values = values[fresh]
            ages = ages[fresh]
            k = len(values)
        size = self._size
        if size + k > len(self._values):
            live = self._ages[:size] > cutoff
            new_size = int(live.sum())
            # Ages are unique per dimension, so live-old plus fresh-new is
            # at most 2 * window - 1 entries: the compacted merge always
            # fits the 2x over-allocated buffer.
            self._values[:new_size] = self._values[:size][live]
            self._ages[:new_size] = self._ages[:size][live]
            size = new_size
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_ages = ages[order]
        pos = np.searchsorted(self._values[:size], sorted_values, side="left")
        new_pos = pos + np.arange(k)
        total = size + k
        merged_values = np.empty(total)
        merged_ages = np.empty(total, dtype=np.int64)
        old_mask = np.ones(total, dtype=bool)
        old_mask[new_pos] = False
        merged_values[new_pos] = sorted_values
        merged_ages[new_pos] = sorted_ages
        merged_values[old_mask] = self._values[:size]
        merged_ages[old_mask] = self._ages[:size]
        self._values[:total] = merged_values
        self._ages[:total] = merged_ages
        self._size = total

    def restore_state(self, values: np.ndarray, ages: np.ndarray) -> None:
        size = len(values)
        if size > len(self._values) or size != len(ages):
            raise MonitoringError(
                f"dim-history snapshot carries {size} values for a buffer "
                f"of capacity {len(self._values)}"
            )
        self._values[:size] = values
        self._ages[:size] = ages
        self._size = size


class _KsJob:
    """One vectorized K-S work item of a chunk fast-path plan.

    ``rows`` holds the sorted monitored sets (one per window, all of
    count ``count``) to test against ``ref``; ``windows`` the chunk-local
    window index of each row. ``rejected``/``d`` are filled by
    :func:`score_ks_jobs`. Jobs from many sessions of one fleet group can
    be pooled into a single call -- the kernel keys them by
    ``(id(ref), count)`` so the shared reference is analyzed once.
    """

    __slots__ = ("dim", "ref", "m", "count", "rows", "windows",
                 "rejected", "d")

    def __init__(self, dim, ref, count, rows, windows):
        self.dim = dim
        self.ref = ref
        self.m = len(ref)
        self.count = count
        self.rows = rows
        self.windows = windows
        self.rejected = None
        self.d = None


class _ChunkPlan:
    """Read-only fast-path plan for one chunk of STSs (see
    :meth:`Monitor.plan_chunk`)."""

    __slots__ = ("k", "static_stop", "jobs", "peaks")

    def __init__(self, k, static_stop, jobs, peaks):
        self.k = k
        self.static_stop = static_stop
        self.jobs = jobs
        self.peaks = peaks


def plan_suffix(plan: _ChunkPlan, start: int) -> Optional[_ChunkPlan]:
    """Re-slice an already-scored plan to its windows at/after ``start``.

    When a scalar replay re-enters the fast path without ever leaving
    the plan's straight line (the streaming engine tracks that invariant
    for its score hints), the original plan's verdicts are still the
    truth for the remaining windows: the replay pushed exactly the rows
    the plan's sliding windows assumed. The remainder can therefore be
    committed directly by slicing the scored jobs -- no K-S recomputed,
    no history re-read. Returns None when nothing was planned at or
    after ``start`` (windows past ``static_stop`` were never scored) or
    when the plan was never scored; callers then re-plan from scratch.
    """
    if start <= 0 or start >= plan.static_stop or start >= plan.k:
        return None
    jobs: List[_KsJob] = []
    for job in plan.jobs:
        if job.rejected is None:
            return None
        pos = int(np.searchsorted(job.windows, start))
        if pos == len(job.windows):
            continue
        sliced = _KsJob(
            dim=job.dim,
            ref=job.ref,
            count=job.count,
            rows=job.rows[pos:],
            windows=job.windows[pos:] - start,
        )
        sliced.d = job.d[pos:]
        sliced.rejected = job.rejected[pos:]
        jobs.append(sliced)
    return _ChunkPlan(
        k=plan.k - start,
        static_stop=plan.static_stop - start,
        jobs=jobs,
        peaks=plan.peaks[start:],
    )


def score_ks_jobs(jobs: Sequence[_KsJob], alpha: float) -> None:
    """Score every job's rows through the shared-reference K-S kernel.

    Jobs are pooled by ``(reference identity, monitored count)``: all
    rows sharing both -- across windows, dimensions, and (in the fleet
    kernel) sessions -- go through one :func:`ks_d_int_rows` call, and
    the rejection threshold is the same cached
    :func:`ks_critical_value` the scalar path compares against. Row
    results are independent of the pooling, so decisions are
    bit-identical to per-window scoring.
    """
    groups: Dict[Tuple[int, int], List[_KsJob]] = {}
    for job in jobs:
        groups.setdefault((id(job.ref), job.count), []).append(job)
    for group in groups.values():
        ref = group[0].ref
        m = group[0].m
        c = group[0].count
        if len(group) == 1:
            rows = group[0].rows
        else:
            rows = np.concatenate([job.rows for job in group], axis=0)
        d = ks_d_int_rows(ref, rows) / (m * c)
        rejected = d > ks_critical_value(m, c, alpha)
        offset = 0
        for job in group:
            b = len(job.rows)
            job.d = d[offset:offset + b]
            job.rejected = rejected[offset:offset + b]
            offset += b


def plan_chunks_pooled(
    entries: Sequence[tuple],
) -> List[Optional[_ChunkPlan]]:
    """Plan many sessions' chunks in pooled vectorized passes.

    ``entries`` is a sequence of ``(monitor, peaks, quality)`` triples,
    one per session, each covering one chunk. Sessions in *steady state*
    -- same region profile object (hence same model, group size, test
    dimensions, references), same chunk window count, full history, and
    no quality-flagged windows -- are bucketed together, and each
    bucket's monitored-set construction (history tails, validity counts,
    sliding windows, row sort) runs as single numpy operations over a
    ``(sessions, windows, group)`` stack instead of once per session.
    Every per-window quantity is computed exactly as
    :meth:`Monitor.plan_chunk` computes it, row for row, so the returned
    plans are bit-identical to per-session planning; sessions that do
    not fit a bucket (filling history, flagged windows) fall back to
    :meth:`Monitor.plan_chunk`, and sessions whose entry state bars the
    fast path altogether get ``None`` -- the same contract, per slot.

    Planning never mutates monitor state; the caller scores the plans
    (:func:`score_ks_jobs` pools rows fleet-wide by shared reference)
    and commits each session's plan individually.
    """
    plans: List[Optional[_ChunkPlan]] = [None] * len(entries)
    buckets: Dict[tuple, list] = {}
    for i, (mon, peaks, quality) in enumerate(entries):
        cfg = mon._cfg
        k = int(peaks.shape[0])
        if (
            not mon._batched
            or cfg.statistic != "ks"
            or k == 0
            or peaks.shape[1] != mon._width
            or mon._gap_pending
            or mon._resync_remaining is not None
        ):
            continue
        profile = mon.model.profile(mon.current_region)
        if not profile.testable():
            continue
        n = profile.group_size
        flagged_windows = False
        if cfg.quality_gating and quality is not None:
            flagged_windows = bool(
                (np.asarray(quality, dtype=np.uint8) & QF_UNSCORABLE).any()
            )
        if flagged_windows or mon._filled < n - 1:
            plans[i] = mon.plan_chunk(peaks, quality)
            continue
        buckets.setdefault((id(profile), k), [profile, []])[1].append(i)

    for (_, k), (profile, members) in buckets.items():
        n = profile.group_size
        mon0 = entries[members[0]][0]
        cfg = mon0._cfg
        test_dims = [
            dim for dim in profile.test_dims
            if len(profile.reference_dim(dim)) > 0
        ]
        all_dims = sorted(set(test_dims) | ({0} if profile.num_peaks > 0 else set()))
        if not all_dims:
            for i in members:
                plans[i] = _ChunkPlan(k=k, static_stop=k, jobs=[],
                                      peaks=entries[i][1])
            continue
        s_count = len(members)
        length = n - 1 + k
        peaks_stack = np.stack([entries[i][1] for i in members])
        dim_col = {dim: j for j, dim in enumerate(all_dims)}
        # Per-session history tails (the n-1 rows before this chunk) --
        # the only per-session gather; everything after is one stacked op.
        tails = np.empty((s_count, n - 1, len(all_dims)))
        if n > 1:
            size = mon0._history.shape[0]
            offsets = np.arange(n - 1)
            cols = np.asarray(all_dims)
            for j, i in enumerate(members):
                mon = entries[i][0]
                idx = (mon._hist_pos - (n - 1) + offsets) % size
                tails[j] = mon._history[idx[:, None], cols]

        arrs = {}
        counts = {}
        for dim in all_dims:
            arr = np.empty((s_count, length))
            arr[:, : n - 1] = tails[:, :, dim_col[dim]]
            arr[:, n - 1:] = peaks_stack[:, :, dim]
            csum = np.zeros((s_count, length + 1), dtype=np.int64)
            np.cumsum(~np.isnan(arr), axis=1, out=csum[:, 1:])
            arrs[dim] = arr
            counts[dim] = csum[:, n:] - csum[:, :-n]

        # static_stop per session: first eligible window whose dim-0
        # monitored set is too small (scalar territory from there on).
        stops = np.full(s_count, k, dtype=np.int64)
        if profile.num_peaks > 0:
            short = counts[0] < cfg.min_mon_values
            any_short = short.any(axis=1)
            if any_short.any():
                stops[any_short] = short.argmax(axis=1)[any_short]

        jobs_by_session: List[list] = [[] for _ in members]
        window_all = np.arange(k, dtype=np.int64)
        for dim in test_dims:
            ref = profile.reference_dim(dim)
            arr = arrs[dim]
            wins = np.lib.stride_tricks.sliding_window_view(arr, n, axis=1)
            rows = np.sort(wins, axis=2)
            cnt = counts[dim]
            eligible = cnt >= cfg.min_mon_values
            # Steady-state short-circuit: every window eligible at one
            # constant count and no static stop -> one job per session,
            # its rows a plain view of the pooled sort.
            simple = (
                (stops == k)
                & eligible.all(axis=1)
                & (cnt == cnt[:, :1]).all(axis=1)
            )
            for j, i in enumerate(members):
                stop = int(stops[j])
                if simple[j]:
                    c = int(cnt[j, 0])
                    jobs_by_session[j].append(_KsJob(
                        dim=dim, ref=ref, count=c,
                        rows=rows[j][:, :c], windows=window_all,
                    ))
                    continue
                if stop == 0:
                    continue
                ok = eligible[j, :stop]
                if not ok.any():
                    continue
                ok_counts = cnt[j, :stop][ok]
                rows_ok = rows[j, :stop][ok]
                window_idx = np.flatnonzero(ok)
                for c in np.unique(ok_counts):
                    sel = ok_counts == c
                    jobs_by_session[j].append(_KsJob(
                        dim=dim, ref=ref, count=int(c),
                        rows=rows_ok[sel][:, : int(c)],
                        windows=window_idx[sel],
                    ))
        for j, i in enumerate(members):
            plans[i] = _ChunkPlan(
                k=k, static_stop=int(stops[j]), jobs=jobs_by_session[j],
                peaks=entries[i][1],
            )
    return plans


@dataclass(frozen=True)
class AnomalyReport:
    """One anomaly reported to the user.

    ``kind`` is ``'anomaly'`` for Algorithm-1 reports and ``'desync'``
    when the monitor lost the region state machine after an acquisition
    gap and could not reacquire within its retry budget. A desync is an
    operational escalation ("re-check this device"), not a detection.
    """

    time: float
    region: str
    streak: int
    kind: str = "anomaly"


@dataclass
class MonitorResult:
    """Everything one monitoring pass produces.

    Attributes:
        times: center time of every STS processed.
        tracked: the monitor's current-region belief at every STS.
        reports: anomaly reports, in time order.
        rejection_flags: whether the current region's test rejected at
            each STS (before candidate resolution).
        group_sizes: group size in effect at each STS (for group-span
            bookkeeping in metrics).
        unscorable_flags: per-STS mask of windows skipped as unscorable
            (quality gating; all False when gating is off).
        quality: the per-window quality bitmasks, when computed.
        report_indices: STS index of each report, aligned with
            ``reports``; ``None`` for results built step-by-step.
        status: ``'ok'``, or ``'degraded'`` when so much of the run was
            unscorable that the monitoring verdict is not meaningful.
    """

    times: np.ndarray
    tracked: List[str]
    reports: List[AnomalyReport]
    rejection_flags: np.ndarray
    group_sizes: np.ndarray
    unscorable_flags: Optional[np.ndarray] = None
    quality: Optional[np.ndarray] = None
    report_indices: Optional[List[int]] = None
    status: str = "ok"

    @property
    def reported_mask(self) -> np.ndarray:
        """Boolean per-STS mask of report firings."""
        mask = np.zeros(len(self.times), dtype=bool)
        if self.report_indices is not None:
            mask[np.asarray(self.report_indices, dtype=int)] = True
            return mask
        if not self.reports or len(self.times) == 0:
            return mask
        # Fallback for hand-built results: tolerant float matching (exact
        # `t in set` comparison broke on times reconstructed through
        # different arithmetic).
        report_times = np.array([r.time for r in self.reports])
        return np.isclose(
            self.times[:, None], report_times[None, :],
            rtol=1e-9, atol=1e-12,
        ).any(axis=1)

    @property
    def unscorable_fraction(self) -> float:
        """Share of STSs skipped as unscorable."""
        if self.unscorable_flags is None or len(self.times) == 0:
            return 0.0
        return float(np.mean(self.unscorable_flags))

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    @classmethod
    def concat(
        cls,
        results: Sequence["MonitorResult"],
        max_unscorable_fraction: Optional[float] = None,
    ) -> "MonitorResult":
        """Merge per-chunk results (e.g. from ``StreamingMonitor.feed``)
        into one stream-wide result.

        ``report_indices`` are re-based from chunk-local to stream-global.
        ``status`` is recomputed over the merged unscorable flags when
        ``max_unscorable_fraction`` is given; otherwise the last chunk's
        status (which the streaming engine already computes cumulatively)
        carries over.
        """
        if not results:
            return cls(
                times=np.empty(0),
                tracked=[],
                reports=[],
                rejection_flags=np.zeros(0, dtype=bool),
                group_sizes=np.zeros(0, dtype=int),
                unscorable_flags=np.zeros(0, dtype=bool),
                report_indices=[],
            )
        tracked: List[str] = []
        reports: List[AnomalyReport] = []
        report_indices: List[int] = []
        offset = 0
        for r in results:
            tracked.extend(r.tracked)
            reports.extend(r.reports)
            if r.report_indices is not None:
                report_indices.extend(i + offset for i in r.report_indices)
            offset += len(r.times)
        quality = None
        if all(r.quality is not None for r in results):
            quality = np.concatenate([r.quality for r in results])
        unscorable = np.concatenate([
            r.unscorable_flags
            if r.unscorable_flags is not None
            else np.zeros(len(r.times), dtype=bool)
            for r in results
        ])
        status = results[-1].status
        if max_unscorable_fraction is not None:
            degraded = (
                len(unscorable)
                and unscorable.mean() >= max_unscorable_fraction
            )
            status = "degraded" if degraded else "ok"
        return cls(
            times=np.concatenate([r.times for r in results]),
            tracked=tracked,
            reports=reports,
            rejection_flags=np.concatenate(
                [r.rejection_flags for r in results]
            ),
            group_sizes=np.concatenate([r.group_sizes for r in results]),
            unscorable_flags=unscorable,
            quality=quality,
            report_indices=report_indices,
            status=status,
        )


class Monitor:
    """A stateful Algorithm-1 monitor for one trained model.

    ``batched`` (the default) enables the vectorized hot path: per-dim
    sorted reference arrays are precomputed once per region profile, the
    rolling history is maintained as incrementally sorted per-dimension
    buffers, and all tested dimensions of a window are scored through one
    :func:`ks_statistic_batch` call. The statistic is computed in exact
    integer arithmetic on both paths, so batched and unbatched monitors
    produce bit-identical results (asserted by the equivalence tests);
    the unbatched path is retained as the reference implementation.
    """

    def __init__(self, model: EddieModel, batched: bool = True) -> None:
        self.model = model
        self._cfg = model.config
        history_len = max(model.max_group_size, 2)
        self._width = self._cfg.max_peaks + (
            2 if self._cfg.diffuse_features else 0
        )
        self._history = np.full((history_len, self._width), np.nan)
        self._hist_pos = 0
        self._filled = 0
        self._batched = bool(batched)
        self._push_count = 0
        # Sorted buffers are only maintained for dimensions some profile
        # can test (plus dim 0, probed by the peak-less-region logic); the
        # remaining peak columns are never queried through _recent.
        tracked: set = {0}
        for profile in model.profiles.values():
            profile.precompute_references()
            tracked.update(profile.test_dims)
        self._tracked_dims: Tuple[int, ...] = tuple(
            d for d in sorted(tracked) if d < self._width
        )
        self._buffers: Dict[int, _SortedDimHistory] = {
            d: _SortedDimHistory(history_len) for d in self._tracked_dims
        }
        self.current_region: str = model.initial_regions[0]
        self._anomaly_count = 0
        self._change_counts: Dict[str, int] = {}
        self._streak = 0
        # Quality-gating state (DESIGN.md D14).
        self._gap_pending = False
        self._resync_remaining: Optional[int] = None
        self.last_unscorable = False
        # Scaled K-S statistics D * sqrt(mn/(m+n)) buffered by _score_dims
        # when observability is on; run_peaks flushes them through one
        # vectorized kolmogorov_sf call into the p-value histogram.
        self._ks_scaled_stats: List[float] = []

    # -- driving ------------------------------------------------------------

    def run_signal(self, signal: Signal) -> MonitorResult:
        """Monitor a raw captured signal end to end.

        The signal's STS peak stream (peaks, times, quality flags) is a
        pure function of the samples and the front-end config, so with an
        artifact cache configured (:mod:`repro.cache`) it is memoized and
        repeated monitoring passes -- group-size sweeps, re-runs of a
        warm experiment -- skip the STFT and peak extraction entirely.
        """
        from repro.cache import get_cache, sts_fingerprint

        cfg = self._cfg
        cache = get_cache()
        key = None
        if cache is not None:
            key = sts_fingerprint(signal, cfg)
            cached = cache.get_sts(key)
            if cached is not None:
                peaks, times, quality = cached
                return self.run_peaks(peaks, times, quality=quality)
        if getattr(cfg, "frontend", ()):
            from repro.dsp import apply_frontend

            # The cache key is computed on the raw signal (the chain is
            # part of the fingerprint), so denoising only runs on a miss.
            signal = apply_frontend(cfg.frontend, signal)
        spectra = stft(signal, cfg.window_samples, cfg.overlap)
        peaks = peak_matrix(spectra, cfg.energy_fraction, cfg.max_peaks,
                            cfg.peak_prominence, cfg.diffuse_features)
        quality = None
        if cfg.quality_gating:
            quality = window_quality(
                signal, cfg.window_samples, cfg.overlap,
                clip_fraction=cfg.clip_fraction,
                gap_samples=cfg.gap_samples,
                dead_fraction=cfg.dead_fraction,
                energy_outlier_mads=cfg.energy_outlier_mads,
            )
        if key is not None:
            cache.put_sts(key, peaks, spectra.times, quality)
        return self.run_peaks(peaks, spectra.times, quality=quality)

    def run_peaks(
        self,
        peaks: np.ndarray,
        times: np.ndarray,
        quality: Optional[np.ndarray] = None,
    ) -> MonitorResult:
        """Monitor a pre-extracted peak matrix.

        ``quality`` is an optional per-window bitmask from
        :func:`repro.core.stft.window_quality`; it only has an effect when
        the model's config enables ``quality_gating``.
        """
        if peaks.shape[0] != len(times):
            raise MonitoringError(
                f"{peaks.shape[0]} peak rows for {len(times)} timestamps"
            )
        if peaks.shape[1] < self._width:
            raise MonitoringError(
                f"peak matrix width {peaks.shape[1]} below the configured "
                f"width {self._width} (max_peaks plus descriptor columns)"
            )
        if quality is not None and len(quality) != len(times):
            raise MonitoringError(
                f"{len(quality)} quality flags for {len(times)} timestamps"
            )
        tracked: List[str] = []
        reports: List[AnomalyReport] = []
        report_indices: List[int] = []
        rejection_flags = np.zeros(len(times), dtype=bool)
        unscorable_flags = np.zeros(len(times), dtype=bool)
        group_sizes = np.zeros(len(times), dtype=int)
        for i in range(len(times)):
            q = int(quality[i]) if quality is not None else 0
            report, rejected = self.step(peaks[i], float(times[i]), quality=q)
            tracked.append(self.current_region)
            rejection_flags[i] = rejected
            unscorable_flags[i] = self.last_unscorable
            group_sizes[i] = self.model.profile(self.current_region).group_size
            if report is not None:
                reports.append(report)
                report_indices.append(i)
        n = len(times)
        status = "ok"
        if n and unscorable_flags.mean() >= self._cfg.max_unscorable_fraction:
            status = "degraded"
        if OBS.enabled:
            self._flush_obs_windows(
                peaks, tracked, reports, rejection_flags, unscorable_flags
            )
            self._flush_obs_run(status)
        return MonitorResult(
            times=np.asarray(times, dtype=float),
            tracked=tracked,
            reports=reports,
            rejection_flags=rejection_flags,
            group_sizes=group_sizes,
            unscorable_flags=unscorable_flags,
            quality=quality,
            report_indices=report_indices,
            status=status,
        )

    def _flush_obs_windows(
        self,
        peaks: np.ndarray,
        tracked: List[str],
        reports: List[AnomalyReport],
        rejection_flags: np.ndarray,
        unscorable_flags: np.ndarray,
    ) -> None:
        """Fold a batch of monitoring events into the metrics registry.

        Counters are accumulated locally inside the per-STS loop (plain
        Python state) and flushed here in one pass per run -- or once per
        chunk on the streaming path -- so the enabled-mode overhead stays
        a handful of instrument calls per trace rather than several per
        window.
        """
        n = len(tracked)
        unscorable = int(unscorable_flags.sum())
        counter("core.monitor", "windows_scored").inc(n - unscorable)
        counter("core.monitor", "windows_unscorable").inc(unscorable)
        anomalies = sum(1 for r in reports if r.kind == "anomaly")
        counter("core.monitor", "reports_anomaly").inc(anomalies)
        counter("core.monitor", "reports_desync").inc(len(reports) - anomalies)
        # K-S rejections by region: the region the monitor believed it was
        # in when the current-region test rejected.
        by_region: Dict[str, int] = {}
        for i in np.flatnonzero(rejection_flags):
            region = tracked[i]
            by_region[region] = by_region.get(region, 0) + 1
        for region, count in by_region.items():
            counter("core.monitor", f"rejections.{region}").inc(count)
        # Distribution summaries for the manifest.
        peak_counts = np.sum(
            ~np.isnan(peaks[:, : self._cfg.max_peaks]), axis=1
        )
        histogram(
            "core.monitor", "sts_peak_count", _PEAK_COUNT_EDGES
        ).record_many(peak_counts)
        if self._ks_scaled_stats:
            pvalues = kolmogorov_sf(np.asarray(self._ks_scaled_stats))
            histogram(
                "core.monitor", "ks_pvalue", _PVALUE_EDGES
            ).record_many(np.atleast_1d(pvalues))
            counter("core.monitor", "ks_tests").inc(
                len(self._ks_scaled_stats)
            )
        self._ks_scaled_stats = []

    def _flush_obs_run(self, status: str) -> None:
        """Run-level counters: once per batch run or stream close."""
        if status == "degraded":
            counter("core.monitor", "runs_degraded").inc()
        counter("core.monitor", "runs_monitored").inc()

    # -- one step of Algorithm 1 ------------------------------------------------

    def step(
        self,
        peak_row: np.ndarray,
        time: float,
        quality: int = 0,
        score_hint: "Optional[Dict[int, Tuple[int, float, bool]]]" = None,
    ):
        """Process one STS; returns (report_or_None, current_test_rejected).

        ``quality`` is the window's acquisition-quality bitmask; with
        quality gating enabled, flagged windows are skipped as unscorable
        (streak suspended) and gap/dead windows additionally invalidate
        the history and schedule a resynchronization.

        ``score_hint`` optionally carries this window's already-scored
        current-region K-S results from a chunk plan, as ``dim ->
        (monitored_count, d, rejected)``. The hint is trusted only when
        every scored dimension matches the live monitored-group size
        (see :meth:`_hinted_dims`); any mismatch falls back to scoring
        from scratch, so a stale hint can cost time but never change a
        decision. Candidate probes are always computed live.
        """
        self.last_unscorable = False
        if self._cfg.quality_gating and (quality & QF_UNSCORABLE):
            # Unscorable STS: the window's samples were corrupted at
            # acquisition. Do not let its garbage peaks into the history,
            # do not count it as a rejection, and keep the anomaly streak
            # frozen (neither grown nor reset) until scoring resumes.
            self.last_unscorable = True
            if quality & (QF_GAPPED | QF_DEAD):
                self._gap_pending = True
            return None, False

        if self._gap_pending:
            # First scorable STS after a gap: execution continued while we
            # were blind, so both the history and the region belief are
            # stale. Start over: clear the history and re-enter region
            # search with a bounded budget.
            self._gap_pending = False
            self._filled = 0
            self._anomaly_count = 0
            self._change_counts.clear()
            self._streak = 0
            if any(p.testable() for p in self.model.profiles.values()):
                self._resync_remaining = self._cfg.resync_timeout

        self._push(peak_row)

        if self._resync_remaining is not None:
            return self._resync_step(time)

        profile = self.model.profile(self.current_region)
        candidates = self.model.candidate_regions(self.current_region)

        if not profile.testable():
            # Peak-less region (e.g. GSM's hot loop): there is no reference
            # to test against, but the region *expects no peaks*. First try
            # to recognize a legal move to a successor; failing that,
            # persistent peaks that no successor explains are anomalous --
            # otherwise any injection arriving while the monitor sits in a
            # peak-less region would be invisible.
            if self._maybe_switch_from_untestable(candidates):
                return None, False
            mon = self._recent(profile.group_size, 0)
            if mon is None:
                self._anomaly_count = 0
                self._streak = 0
                return None, False
            self._anomaly_count += 1
            self._streak += 1
            if self._anomaly_count > self._cfg.report_threshold:
                report = AnomalyReport(
                    time=time, region=self.current_region, streak=self._streak
                )
                self._anomaly_count = 0
                return report, True
            return None, True

        any_reject = False
        rejecting_dims = 0
        explained_dims: Dict[str, int] = {}
        mons = {
            dim: self._recent(profile.group_size, dim)
            for dim in profile.test_dims
        }
        rejected_dims = (
            self._hinted_dims(profile, mons, score_hint)
            if score_hint is not None
            else None
        )
        if rejected_dims is None:
            rejected_dims = self._score_dims(profile, mons)
        for dim in profile.test_dims:
            mon = mons[dim]
            if mon is None:
                if dim == 0 and profile.num_peaks > 0 and self._filled >= profile.group_size:
                    # The history is full but the expected peaks are simply
                    # absent. Injections whose cache misses smear the loop's
                    # period erase its peaks entirely -- silence here would
                    # let exactly the paper's "off-chip activity" injections
                    # (Section 5.7) go unseen. A region legitimately without
                    # peaks can still explain it (candidate with no peaks).
                    any_reject = True
                    peakless = [
                        c for c in candidates
                        if not self.model.profile(c).testable()
                    ]
                    if peakless:
                        for cand_name in peakless:
                            self._change_counts[cand_name] = (
                                self._change_counts.get(cand_name, 0) + 1
                            )
                    else:
                        self._anomaly_count += 1
                continue
            if not rejected_dims[dim]:
                continue
            any_reject = True
            rejecting_dims += 1
            explained = False
            for cand_name in candidates:
                cand = self.model.profile(cand_name)
                if not cand.testable() or dim not in cand.test_dims:
                    continue
                # Probe the candidate with a group bounded by the current
                # region's n: right after a transition the history still
                # contains old-region STSs, and a full-size candidate group
                # would keep rejecting long enough to fake an anomaly.
                probe = min(cand.group_size, profile.group_size)
                if self._candidate_accepts(cand, dim, probe):
                    explained_dims[cand_name] = (
                        explained_dims.get(cand_name, 0) + 1
                    )
                    explained = True
            if not explained:
                self._anomaly_count += 1

        # A candidate earns one change "vote" per step in which it explains
        # at least change_fraction of the rejecting dimensions. Requiring
        # several such steps (below) keeps one stochastic rejection from
        # flipping the tracked region.
        if rejecting_dims:
            need = max(1, int(np.ceil(self._cfg.change_fraction * rejecting_dims)))
            for cand_name, explained_count in explained_dims.items():
                if explained_count >= need:
                    self._change_counts[cand_name] = (
                        self._change_counts.get(cand_name, 0) + 1
                    )

        if not any_reject:
            self._anomaly_count = 0
            self._change_counts.clear()
            self._streak = 0
            return None, False

        self._streak += 1

        # Region transition once a candidate has explained the rejections
        # for several consecutive-rejection steps.
        if self._change_counts:
            best = max(self._change_counts, key=self._change_counts.get)
            if self._change_counts[best] >= self._cfg.change_steps:
                self._transition_to(best)
                return None, True

        # Anomaly?
        if self._anomaly_count > self._cfg.report_threshold:
            report = AnomalyReport(
                time=time, region=self.current_region, streak=self._streak
            )
            self._anomaly_count = 0
            return report, True

        return None, True

    # -- chunk fast path (vectorized optimistic scoring) ---------------------

    def fast_path_ready(self) -> bool:
        """Cheap entry gate for :meth:`plan_chunk`.

        True when the monitor's *state* admits the optimistic fast path
        right now (batched K-S, no pending gap resync, no active resync
        search, testable region). The streaming engine consults this
        before re-planning the remainder of a chunk mid-replay, so long
        resync or untestable stretches do not pay planning costs per
        window.
        """
        return (
            self._batched
            and self._cfg.statistic == "ks"
            and not self._gap_pending
            and self._resync_remaining is None
            and self.model.profile(self.current_region).testable()
        )

    def plan_chunk(
        self, peaks: np.ndarray, quality: Optional[np.ndarray]
    ) -> Optional[_ChunkPlan]:
        """Plan the vectorized fast path for one chunk of STS rows.

        The fast path is *optimistic*: it assumes every window accepts
        the current region, computes all windows' K-S decisions in bulk
        (sliding-window monitored sets over the history tail plus the
        chunk's own rows), and only if that assumption holds does
        :meth:`commit_chunk` apply the whole chunk's state changes at
        once. Planning is strictly read-only, so when any window rejects
        -- or hits a branch the vectorized path does not model -- the
        chunk (from that window on) replays through the unmodified
        scalar :meth:`step`, which is why fast and scalar paths are
        bit-identical by construction.

        Returns ``None`` when the entry state already diverges from the
        accept-only straight line: unbatched or non-K-S monitors, a
        pending gap resync, an active resync search, or an untestable
        (peak-less) current region. ``static_stop`` marks the first
        window that must go scalar regardless of K-S outcomes (a
        quality-flagged window, or an eligible window missing its dim-0
        peaks, which the scalar path treats as a rejection).
        """
        cfg = self._cfg
        k = int(peaks.shape[0])
        if (
            not self._batched
            or cfg.statistic != "ks"
            or k == 0
            or peaks.shape[1] != self._width
            or self._gap_pending
            or self._resync_remaining is not None
        ):
            return None
        profile = self.model.profile(self.current_region)
        if not profile.testable():
            return None
        static_stop = k
        if cfg.quality_gating and quality is not None:
            flagged = np.flatnonzero(
                np.asarray(quality, dtype=np.uint8) & QF_UNSCORABLE
            )
            if len(flagged):
                static_stop = int(flagged[0])
                if static_stop == 0:
                    return None
        n = profile.group_size
        # A window is K-S eligible once the history (plus the chunk's own
        # pushes up to it) holds n rows -- the _recent() gate.
        first_eligible = max(0, n - self._filled - 1)

        streams: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

        def dim_stream(dim: int, stop: int):
            cached = streams.get(dim)
            if cached is not None and len(cached[1]) >= stop:
                return cached
            if n > 1:
                size = self._history.shape[0]
                idx = (
                    self._hist_pos - (n - 1) + np.arange(n - 1)
                ) % size
                prev = self._history[idx, dim]
            else:
                prev = np.empty(0)
            arr = np.concatenate([prev, peaks[:stop, dim]])
            csum = np.concatenate(
                [[0], np.cumsum(~np.isnan(arr), dtype=np.int64)]
            )
            counts = csum[n:] - csum[:-n]
            streams[dim] = (arr, counts)
            return arr, counts

        if profile.num_peaks > 0 and first_eligible < static_stop:
            # Eligible windows whose dim-0 monitored set is too small take
            # the missing-peaks anomaly branch in step(): scalar territory.
            _, counts0 = dim_stream(0, static_stop)
            short = np.flatnonzero(
                counts0[first_eligible:static_stop] < cfg.min_mon_values
            )
            if len(short):
                static_stop = first_eligible + int(short[0])

        jobs: List[_KsJob] = []
        if first_eligible < static_stop:
            for dim in profile.test_dims:
                ref = profile.reference_dim(dim)
                if len(ref) == 0:
                    continue
                arr, counts = dim_stream(dim, static_stop)
                counts = counts[first_eligible:static_stop]
                ok = counts >= cfg.min_mon_values
                if not ok.any():
                    continue
                windows = np.lib.stride_tricks.sliding_window_view(
                    arr[: n - 1 + static_stop], n
                )[first_eligible:static_stop]
                # Ascending sort pushes the NaNs of each window past its
                # count of real values; the leading count columns are
                # exactly _recent()'s sorted monitored set.
                rows_sorted = np.sort(windows[ok], axis=1)
                window_idx = first_eligible + np.flatnonzero(ok)
                ok_counts = counts[ok]
                for c in np.unique(ok_counts):
                    sel = ok_counts == c
                    jobs.append(_KsJob(
                        dim=dim,
                        ref=ref,
                        count=int(c),
                        rows=rows_sorted[sel][:, : int(c)],
                        windows=window_idx[sel],
                    ))
        return _ChunkPlan(k=k, static_stop=static_stop, jobs=jobs,
                          peaks=peaks)

    def commit_chunk(self, plan: _ChunkPlan) -> int:
        """Apply a scored plan's accept-only prefix; return its length.

        The prefix runs up to (excluding) the first window any scored job
        rejected, capped by the plan's ``static_stop``. Committing
        replays exactly what that many accepting :meth:`step` calls would
        have done -- push every row into the rolling history and sorted
        buffers, reset the anomaly/transition counters -- in a handful of
        bulk numpy ops. Windows from the returned index on must go
        through the scalar :meth:`step` (nothing about them has been
        committed; planning never mutates).
        """
        first_bad = plan.static_stop
        for job in plan.jobs:
            if job.rejected is None:
                raise MonitoringError("commit_chunk needs a scored plan")
            hits = job.windows[job.rejected]
            if len(hits) and int(hits[0]) < first_bad:
                first_bad = int(hits[0])
        if OBS.enabled:
            for job in plan.jobs:
                mask = job.windows < first_bad
                if mask.any():
                    scale = (
                        job.m * job.count / (job.m + job.count)
                    ) ** 0.5
                    self._ks_scaled_stats.extend(
                        (job.d[mask] * scale).tolist()
                    )
        if first_bad == 0:
            return 0
        rows = plan.peaks[:first_bad]
        base = self._push_count
        for dim in self._tracked_dims:
            column = rows[:, dim]
            mask = column == column  # not NaN
            if mask.any():
                self._buffers[dim].insert_many(
                    column[mask], base + np.flatnonzero(mask)
                )
        size = self._history.shape[0]
        take = rows[-size:] if first_bad > size else rows
        offsets = (
            self._hist_pos + (first_bad - len(take)) + np.arange(len(take))
        ) % size
        self._history[offsets] = take
        self._hist_pos = (self._hist_pos + first_bad) % size
        self._filled = min(self._filled + first_bad, size)
        self._push_count += first_bad
        # Every committed window accepted the current region: the last
        # step of the prefix reset all streak state, exactly as below.
        self._anomaly_count = 0
        self._change_counts.clear()
        self._streak = 0
        self.last_unscorable = False
        return first_bad

    # -- checkpointing -------------------------------------------------------

    def export_state(self) -> Tuple[dict, dict]:
        """Full Algorithm-1 state as ``(meta, arrays)``.

        Everything :meth:`step` reads or writes is covered: the rolling
        history matrix and its cursor, the per-dimension sorted buffers,
        the region belief, and every counter of the anomaly / transition /
        quality state machines. ``_ks_scaled_stats`` is observability-only
        and flushed per chunk on the streaming path, so it is reset rather
        than carried.
        """
        meta = {
            "hist_pos": self._hist_pos,
            "filled": self._filled,
            "push_count": self._push_count,
            "current_region": self.current_region,
            "anomaly_count": self._anomaly_count,
            "change_counts": dict(self._change_counts),
            "streak": self._streak,
            "gap_pending": self._gap_pending,
            "resync_remaining": self._resync_remaining,
            "last_unscorable": self.last_unscorable,
            "tracked_dims": list(self._tracked_dims),
        }
        arrays = {"history": self._history.copy()}
        for dim, buf in self._buffers.items():
            values, ages = buf.export_state()
            arrays[f"dim{dim}.values"] = values
            arrays[f"dim{dim}.ages"] = ages
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict) -> None:
        """Adopt state exported by :meth:`export_state`.

        The receiving monitor must be built from the same model/config
        (callers verify via the config fingerprint); here we only check
        the structural invariants that would otherwise corrupt state
        silently.
        """
        if tuple(meta["tracked_dims"]) != self._tracked_dims:
            raise MonitoringError(
                f"monitor snapshot tracks dims {meta['tracked_dims']}, "
                f"this model tracks {list(self._tracked_dims)}"
            )
        history = np.asarray(arrays["history"], dtype=float)
        if history.shape != self._history.shape:
            raise MonitoringError(
                f"monitor snapshot history shape {history.shape} does not "
                f"match this model's {self._history.shape}"
            )
        self._history[...] = history
        self._hist_pos = int(meta["hist_pos"])
        self._filled = int(meta["filled"])
        self._push_count = int(meta["push_count"])
        self.current_region = str(meta["current_region"])
        self._anomaly_count = int(meta["anomaly_count"])
        self._change_counts = {
            str(k): int(v) for k, v in dict(meta["change_counts"]).items()
        }
        self._streak = int(meta["streak"])
        self._gap_pending = bool(meta["gap_pending"])
        resync = meta["resync_remaining"]
        self._resync_remaining = None if resync is None else int(resync)
        self.last_unscorable = bool(meta["last_unscorable"])
        for dim in self._tracked_dims:
            self._buffers[dim].restore_state(
                np.asarray(arrays[f"dim{dim}.values"], dtype=float),
                np.asarray(arrays[f"dim{dim}.ages"], dtype=np.int64),
            )
        self._ks_scaled_stats = []

    # -- resynchronization after acquisition gaps ---------------------------

    def _resync_step(self, time: float):
        """One region-search step after a gap; returns (report, rejected)."""
        if self._try_reacquire():
            self._resync_remaining = None
            return None, False
        self._resync_remaining -= 1
        if self._resync_remaining <= 0:
            # Could not place the execution anywhere in the state machine
            # within the budget: escalate, then resume best-effort
            # monitoring from the current belief rather than staying
            # silent forever.
            self._resync_remaining = None
            report = AnomalyReport(
                time=time,
                region=self.current_region,
                streak=self._cfg.resync_timeout,
                kind="desync",
            )
            return report, False
        return None, False

    def _try_reacquire(self) -> bool:
        """Search all regions for one whose reference explains the recent
        post-gap STSs; prefers the pre-gap belief for continuity."""
        if self._filled < self._cfg.min_mon_values:
            return False
        order = [self.current_region] + [
            r for r in self.model.profiles if r != self.current_region
        ]
        for name in order:
            prof = self.model.profile(name)
            if not prof.testable():
                continue
            n = min(prof.group_size, self._filled)
            tail = self._history_tail(n)
            tested = 0
            accepted = 0
            for dim in prof.test_dims:
                values = tail[:, dim]
                values = values[~np.isnan(values)]
                if len(values) < self._cfg.min_mon_values:
                    continue
                tested += 1
                if not self._rejects(prof, dim, values):
                    accepted += 1
            if tested and accepted >= max(
                1, int(np.ceil(self._cfg.change_fraction * tested))
            ):
                # Unlike a tracked transition, the history here is all
                # post-gap and belongs to the reacquired region: keep it.
                self._reacquire(name)
                return True
        # A consistently peak-less post-gap stream is explained by a
        # peak-less region, if the model has one (the paper's GSM loop).
        recent = self._history_tail(self._filled)[:, : self._width]
        if np.all(np.isnan(recent)):
            for name in order:
                if not self.model.profile(name).testable():
                    self._reacquire(name)
                    return True
        return False

    def _reacquire(self, region: str) -> None:
        self.current_region = region
        self._anomaly_count = 0
        self._change_counts.clear()
        self._streak = 0

    # -- internals ------------------------------------------------------------

    def _push(self, peak_row: np.ndarray) -> None:
        row = np.full(self._width, np.nan)
        usable = min(len(peak_row), self._width)
        row[:usable] = peak_row[:usable]
        if self._batched:
            for dim in self._tracked_dims:
                value = row[dim]
                if value == value:  # not NaN
                    self._buffers[dim].insert(value, self._push_count)
        # Circular write: np.roll here used to copy the whole history
        # matrix on every push.
        self._history[self._hist_pos] = row
        self._hist_pos = (self._hist_pos + 1) % self._history.shape[0]
        self._filled = min(self._filled + 1, self._history.shape[0])
        self._push_count += 1

    def _history_tail(self, n: int) -> np.ndarray:
        """The last ``n`` pushed rows in chronological order.

        Callers must keep ``n <= self._filled`` (they all gate on it).
        Only the slow paths (the unbatched reference monitor, candidate
        probing fallbacks, post-gap reacquisition) materialize this view;
        the batched hot path reads the sorted per-dim buffers instead.
        """
        size = self._history.shape[0]
        n = min(n, size)
        idx = (self._hist_pos - n + np.arange(n)) % size
        return self._history[idx]

    def _recent(self, n: int, dim: int) -> Optional[np.ndarray]:
        """Last up-to-n non-NaN observations of one peak dimension.

        On the batched path the values come back sorted (from the
        incrementally maintained sorted buffers); on the reference path
        they are chronological. Both two-sample tests are order-invariant,
        so downstream decisions are identical.
        """
        if self._filled < n:
            return None
        if self._batched and dim in self._buffers:
            values = self._buffers[dim].query(self._push_count - n)
        else:
            values = self._history_tail(n)[:, dim]
            values = values[~np.isnan(values)]
        if len(values) < self._cfg.min_mon_values:
            return None
        return values

    def _score_dims(
        self,
        profile: RegionProfile,
        mons: Dict[int, Optional[np.ndarray]],
    ) -> Dict[int, bool]:
        """Rejection decision for every tested dimension of one window.

        On the batched path all K-S-testable dimensions are scored in one
        :func:`ks_statistic_batch` call against the profile's precomputed
        sorted references; otherwise (reference path, or the U-test
        alternative) each dimension runs through
        :func:`~repro.core.stats.two_sample_reject` as before.
        """
        rejected: Dict[int, bool] = {}
        batch_dims: List[int] = []
        batch_refs: List[np.ndarray] = []
        batch_mons: List[np.ndarray] = []
        batch_runs: List[Tuple[np.ndarray, np.ndarray]] = []
        for dim, mon in mons.items():
            if mon is None:
                rejected[dim] = False
                continue
            ref = profile.reference_dim(dim)
            if len(ref) == 0:
                rejected[dim] = False
                continue
            if self._batched and self._cfg.statistic == "ks":
                batch_dims.append(dim)
                batch_refs.append(ref)
                batch_mons.append(mon)
                batch_runs.append(profile.reference_dim_runs(dim))
            else:
                rejected[dim] = two_sample_reject(
                    ref, mon, self._cfg.alpha, self._cfg.statistic
                )
        if batch_dims:
            stats = ks_statistic_batch(batch_refs, batch_mons, batch_runs)
            for dim, ref, mon, d_stat in zip(
                batch_dims, batch_refs, batch_mons, stats
            ):
                rejected[dim] = bool(
                    d_stat > ks_critical_value(len(ref), len(mon), self._cfg.alpha)
                )
            if OBS.enabled:
                # Buffer D * sqrt(mn/(m+n)); the run-level flush turns the
                # whole buffer into asymptotic p-values in one shot.
                for ref, mon, d_stat in zip(batch_refs, batch_mons, stats):
                    m, k = len(ref), len(mon)
                    self._ks_scaled_stats.append(
                        float(d_stat) * (m * k / (m + k)) ** 0.5
                    )
        return rejected

    def _hinted_dims(
        self,
        profile: RegionProfile,
        mons: Dict[int, Optional[np.ndarray]],
        hint: "Dict[int, Tuple[int, float, bool]]",
    ) -> Optional[Dict[int, bool]]:
        """Current-region rejections replayed from a chunk plan's scores.

        A chunk plan's K-S jobs already hold this window's exact-integer
        D and rejection verdict per dimension (identical arithmetic to
        :meth:`_score_dims`; see ``tests/test_fleet_kernel.py``), as long
        as the history the plan assumed is the history the scalar replay
        actually built -- the streaming engine tracks that invariant and
        only passes hints while it holds. This method adds a local
        defense: if any scorable dimension is missing from the hint or
        its recorded monitored-group size disagrees with the live one,
        it returns None and the caller rescores everything, so hints are
        an optimization with no decision surface of their own. The OBS
        scaled-statistic buffer is fed exactly as `_score_dims` would.
        """
        rejected: Dict[int, bool] = {}
        scored: List[Tuple[int, int, float]] = []
        for dim, mon in mons.items():
            if mon is None:
                rejected[dim] = False
                continue
            ref = profile.reference_dim(dim)
            if len(ref) == 0:
                rejected[dim] = False
                continue
            entry = hint.get(dim)
            if entry is None or entry[0] != len(mon):
                return None
            rejected[dim] = bool(entry[2])
            scored.append((len(ref), entry[0], entry[1]))
        if OBS.enabled:
            for m, k, d_stat in scored:
                self._ks_scaled_stats.append(
                    float(d_stat) * (m * k / (m + k)) ** 0.5
                )
        return rejected

    def _rejects(self, profile: RegionProfile, dim: int, mon: np.ndarray) -> bool:
        ref = profile.reference_dim(dim)
        if len(ref) == 0:
            return False
        ref_runs = (
            profile.reference_dim_runs(dim)
            if self._cfg.statistic == "ks"
            else None
        )
        return two_sample_reject(
            ref, mon, self._cfg.alpha, self._cfg.statistic, ref_runs
        )

    def _candidate_accepts(self, cand: RegionProfile, dim: int, probe: int) -> bool:
        """Whether a successor region's reference explains recent STSs.

        Accepts if either the bounded probe group or its fresh suffix (the
        most recent few STSs) passes -- the suffix covers the moment just
        after a transition when older history is still mixed.
        """
        mon = self._recent(probe, dim)
        if mon is not None and not self._rejects(cand, dim, mon):
            return True
        suffix = self._recent(max(2, self._cfg.min_mon_values), dim)
        return suffix is not None and not self._rejects(cand, dim, suffix)

    def _maybe_switch_from_untestable(self, candidates: Sequence[str]) -> bool:
        """Try to recognize a successor region from a peak-less one.

        Returns True when a transition happened.
        """
        for cand_name in candidates:
            cand = self.model.profile(cand_name)
            if not cand.testable():
                continue
            accepted = 0
            tested = 0
            for dim in cand.test_dims:
                mon = self._recent(cand.group_size, dim)
                if mon is None:
                    continue
                tested += 1
                if not self._rejects(cand, dim, mon):
                    accepted += 1
            if tested and accepted >= max(
                1, int(np.ceil(self._cfg.change_fraction * tested))
            ):
                self._transition_to(cand_name)
                return True
        return False

    def _transition_to(self, region: str) -> None:
        self.current_region = region
        self._anomaly_count = 0
        self._change_counts.clear()
        self._streak = 0
        # Most of the history was gathered in the previous region and is
        # stale for the new region's tests -- but the newest few STSs are
        # what triggered the transition, so keep those and re-fill the
        # rest before testing resumes.
        self._filled = min(self._filled, self._cfg.min_mon_values)
