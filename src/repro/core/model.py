"""EDDIE's trained model and its configuration.

Training (Section 4.1) produces, per region of the region-level state
machine: a reference set of peak-frequency observations (one row per
training STS, strongest peak first), the number of peak dimensions to test,
and the K-S group size n selected for the accuracy/latency trade-off
(Section 4.3). The model also carries the state machine's successor
relation, which Algorithm 1 consults on rejections.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.stats.ks import sorted_run_ends
from repro.dsp import FrontendStage, validate_frontend
from repro.errors import ConfigurationError, TrainingError

__all__ = ["EddieConfig", "RegionProfile", "EddieModel", "CalibrationInfo"]


@dataclass(frozen=True, kw_only=True)
class CalibrationInfo:
    """Provenance of a derived (calibrated) model.

    A derived model is a trained :class:`EddieModel` whose reference
    distributions were warped onto a perturbed device variant by
    ``repro.transfer.calibrate_model`` -- never retrained. The record
    pins the exact base model (by content fingerprint) and the warp that
    produced the derivation, so registries and serve can refuse
    derivations whose lineage does not check out.

    Attributes:
        base_fingerprint: ``model_fingerprint`` hex of the base model the
            references were warped from.
        method: warp family identifier (currently ``"scale-snap"``:
            global constrained frequency scale + per-region refinement +
            per-dim monotone line snapping; DESIGN.md D23).
        variant: free-form description of the target device variant.
        freq_scale: the estimated global frequency scale factor
            (target / base).
        windows: STS windows of the unlabeled calibration capture used.
        snapped_fraction: share of reference mass that snapped onto an
            observed target spectral line.
    """

    base_fingerprint: str
    method: str = "scale-snap"
    variant: str = ""
    freq_scale: float = 1.0
    windows: int = 0
    snapped_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.base_fingerprint:
            raise ConfigurationError(
                "CalibrationInfo requires the base model fingerprint"
            )
        if not self.method:
            raise ConfigurationError("CalibrationInfo.method must be set")
        if not self.freq_scale > 0:
            raise ConfigurationError(
                f"freq_scale must be positive, got {self.freq_scale}"
            )
        if self.windows < 0:
            raise ConfigurationError("windows must be >= 0")
        if not 0 <= self.snapped_fraction <= 1:
            raise ConfigurationError("snapped_fraction must be in [0, 1]")

    def to_dict(self) -> Dict[str, object]:
        return {
            "base_fingerprint": self.base_fingerprint,
            "method": self.method,
            "variant": self.variant,
            "freq_scale": float(self.freq_scale),
            "windows": int(self.windows),
            "snapped_fraction": float(self.snapped_fraction),
        }

    @classmethod
    def from_dict(cls, raw: object) -> "CalibrationInfo":
        if not isinstance(raw, dict):
            raise ConfigurationError(
                f"calibration block must be a mapping, got {type(raw).__name__}"
            )
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ConfigurationError(
                f"calibration block has unknown fields: {sorted(unknown)}"
            )
        try:
            return cls(**raw)
        except TypeError as exc:
            raise ConfigurationError(f"bad calibration block: {exc}") from None


@dataclass(frozen=True, kw_only=True)
class EddieConfig:
    """All tunables of the EDDIE pipeline.

    Construction is keyword-only and validates eagerly: every invalid
    field raises :class:`~repro.errors.ConfigurationError` at
    construction time, never later inside the pipeline.

    Attributes:
        window_samples: STFT window length in samples.
        overlap: STFT window overlap (paper: 50%).
        energy_fraction: minimum share of window energy for a peak (paper: 1%).
        peak_prominence: minimum ratio of a peak bin to the median bin
            power (noise-floor criterion; see repro.core.peaks).
        max_peaks: cap on tracked peak dimensions per region.
        alpha: K-S significance level (paper: 99% confidence = 0.01).
        statistic: the two-sample test: 'ks' (the paper's choice) or
            'utest' (the alternative it was compared against, Sec. 4.2).
        diffuse_features: also track each window's spectral centroid and
            bandwidth as two extra tested dimensions (the paper's
            suggested "consideration of diffuse spectral features"); makes
            even peak-less regions testable.
        report_threshold: tolerated consecutive K-S rejections; an anomaly
            is reported on a longer streak (paper: 3).
        change_fraction: fraction of the rejecting peak dimensions a
            successor region must explain in one step to earn a change
            vote.
        change_steps: change votes a successor needs before the monitor
            transitions to it.
        group_sizes: candidate values of the K-S group size n evaluated
            during training (Figure 3 sweep).
        reference_cap: maximum reference windows stored per region.
        min_mon_values: minimum non-NaN observations needed to run a test.
        quality_gating: compute per-window acquisition-quality flags
            (clipped / gapped / dead / energy-outlier; see
            repro.core.stft.window_quality) and treat flagged STSs as
            *unscorable*: the anomaly streak suspends across them instead
            of counting them as rejections, and after a gap the monitor
            re-enters region search (DESIGN.md D14). Off by default --
            the paper's lab capture never needed it.
        clip_fraction: share of rail-level samples marking a window
            clipped.
        gap_samples: consecutive exact zeros marking a window gapped.
        dead_fraction: share of zeros marking a window dead.
        energy_outlier_mads: robust z-score (in scaled MADs of
            log-energy) beyond which a window is an energy outlier.
        resync_timeout: scorable windows the monitor may spend
            reacquiring a region after a gap before escalating to a
            ``desync`` report.
        max_unscorable_fraction: when at least this share of a run's
            windows is unscorable, the result's status is ``'degraded'``.
        frontend: preprocessing chain applied to every captured signal
            before the STFT -- a tuple of
            :class:`~repro.dsp.FrontendStage` stages (e.g.
            :class:`~repro.dsp.SvdDenoiser`) run in order on training,
            batch, streaming, fleet, and served paths alike. Part of the
            config fingerprint, so a served model reproduces its
            training front end exactly (DESIGN.md D22).
    """

    window_samples: int = 512
    overlap: float = 0.5
    energy_fraction: float = 0.01
    peak_prominence: float = 15.0
    max_peaks: int = 12
    alpha: float = 0.01
    statistic: str = "ks"
    diffuse_features: bool = False
    report_threshold: int = 3
    change_fraction: float = 0.5
    change_steps: int = 3
    group_sizes: Tuple[int, ...] = (8, 12, 16, 24, 32, 48, 64, 96, 128)
    reference_cap: int = 1200
    min_mon_values: int = 5
    quality_gating: bool = False
    clip_fraction: float = 0.01
    gap_samples: int = 16
    dead_fraction: float = 0.9
    energy_outlier_mads: float = 8.0
    resync_timeout: int = 96
    max_unscorable_fraction: float = 0.9
    frontend: Tuple[FrontendStage, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.frontend, tuple):
            object.__setattr__(self, "frontend", tuple(self.frontend))
        self.validate()

    def validate(self) -> "EddieConfig":
        """Check every field; raise ConfigurationError on the first bad one.

        Runs automatically at construction; call it explicitly after
        deserializing a config through a path that bypasses ``__init__``.
        Returns ``self`` so it chains.
        """
        if self.window_samples < 8:
            raise ConfigurationError(
                f"window_samples must be >= 8, got {self.window_samples}"
            )
        if not 0 <= self.overlap < 1:
            raise ConfigurationError(
                f"overlap must be in [0, 1), got {self.overlap}"
            )
        if not 0 < self.energy_fraction < 1:
            raise ConfigurationError(
                f"energy_fraction must be in (0, 1), got {self.energy_fraction}"
            )
        if self.peak_prominence < 0:
            raise ConfigurationError("peak_prominence must be >= 0")
        if self.reference_cap < 1:
            raise ConfigurationError("reference_cap must be >= 1")
        if self.min_mon_values < 2:
            raise ConfigurationError("min_mon_values must be >= 2")
        if not 0 < self.alpha < 1:
            raise ConfigurationError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.statistic not in ("ks", "utest"):
            raise ConfigurationError(f"unknown statistic {self.statistic!r}")
        if self.report_threshold < 0:
            raise ConfigurationError("report_threshold must be >= 0")
        if not 0 < self.change_fraction <= 1:
            raise ConfigurationError("change_fraction must be in (0, 1]")
        if self.change_steps < 1:
            raise ConfigurationError("change_steps must be >= 1")
        if not self.group_sizes or any(n < 2 for n in self.group_sizes):
            raise ConfigurationError("group_sizes must be >= 2")
        if self.max_peaks < 1:
            raise ConfigurationError("max_peaks must be >= 1")
        if not 0 < self.clip_fraction <= 1:
            raise ConfigurationError("clip_fraction must be in (0, 1]")
        if self.gap_samples < 1:
            raise ConfigurationError("gap_samples must be >= 1")
        if not 0 < self.dead_fraction <= 1:
            raise ConfigurationError("dead_fraction must be in (0, 1]")
        if self.energy_outlier_mads <= 0:
            raise ConfigurationError("energy_outlier_mads must be positive")
        if self.resync_timeout < 1:
            raise ConfigurationError("resync_timeout must be >= 1")
        if not 0 < self.max_unscorable_fraction <= 1:
            raise ConfigurationError(
                "max_unscorable_fraction must be in (0, 1]"
            )
        validate_frontend(self.frontend)
        return self


class RegionProfile:
    """Reference data for one region.

    Attributes:
        name: region name (``loop:...`` or ``inter:...``).
        reference: array (n_windows, max_peaks [+2]) of training peak
            frequencies, strongest first, NaN-padded -- plus the spectral
            centroid/bandwidth columns when diffuse features are enabled.
        num_peaks: peak dimensions tested for this region.
        group_size: the K-S group size n chosen for this region.
        descriptor_dims: column indices of the diffuse-feature descriptors
            tested in addition to the peaks (empty when disabled).
    """

    def __init__(
        self,
        name: str,
        reference: np.ndarray,
        num_peaks: int,
        group_size: int,
        descriptor_dims: Tuple[int, ...] = (),
    ) -> None:
        reference = np.asarray(reference, dtype=float)
        if reference.ndim != 2:
            raise TrainingError(
                f"region {name!r}: reference must be 2-D, got shape "
                f"{reference.shape}"
            )
        if num_peaks > reference.shape[1]:
            raise TrainingError(
                f"region {name!r}: num_peaks {num_peaks} exceeds reference "
                f"width {reference.shape[1]}"
            )
        if any(d >= reference.shape[1] for d in descriptor_dims):
            raise TrainingError(
                f"region {name!r}: descriptor dims {descriptor_dims} exceed "
                f"reference width {reference.shape[1]}"
            )
        if group_size < 2:
            raise TrainingError(f"region {name!r}: group_size must be >= 2")
        self.name = name
        self.reference = reference
        self.num_peaks = int(num_peaks)
        self.group_size = int(group_size)
        self.descriptor_dims = tuple(int(d) for d in descriptor_dims)
        self._sorted_dims: Dict[int, np.ndarray] = {}
        self._dim_runs: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._test_dims: Tuple[int, ...] = (
            tuple(range(self.num_peaks)) + self.descriptor_dims
        )

    @property
    def n_reference(self) -> int:
        return self.reference.shape[0]

    @property
    def test_dims(self) -> Tuple[int, ...]:
        """Column indices tested for this region: peaks, then descriptors."""
        return self._test_dims

    def reference_dim(self, dim: int) -> np.ndarray:
        """Sorted, NaN-free reference values of peak dimension ``dim``."""
        cached = self._sorted_dims.get(dim)
        if cached is None:
            column = self.reference[:, dim]
            cached = np.sort(column[~np.isnan(column)])
            self._sorted_dims[dim] = cached
        return cached

    def reference_dim_runs(self, dim: int) -> Tuple[np.ndarray, np.ndarray]:
        """Precomputed :func:`sorted_run_ends` of ``reference_dim(dim)``.

        The reference side of every K-S test is fixed per region, so its
        run-end structure (cumulative counts and distinct values) is
        computed once and fed to the batched kernel on every window.
        """
        cached = self._dim_runs.get(dim)
        if cached is None:
            ref = self.reference_dim(dim)
            if len(ref):
                cached = sorted_run_ends(ref)
            else:
                cached = (np.empty(0, dtype=np.int64), ref)
            self._dim_runs[dim] = cached
        return cached

    def precompute_references(self) -> None:
        """Eagerly sort every tested dimension's reference set.

        The sorted arrays (and their run-end structure) are cached per
        profile either way (lazily, on first use); the monitor calls this
        once up front so no sort is ever paid inside its scoring loop.
        """
        for dim in self.test_dims:
            self.reference_dim(dim)
            self.reference_dim_runs(dim)

    def testable(self) -> bool:
        """Whether this region has any usable tested dimension.

        Regions whose loops produce no spectral peaks (the paper's GSM
        example) are untestable -- unless diffuse features are enabled;
        they are the source of imperfect coverage.
        """
        return any(len(self.reference_dim(d)) > 0 for d in self.test_dims)

    def __repr__(self) -> str:
        return (
            f"RegionProfile({self.name!r}, refs={self.n_reference}, "
            f"peaks={self.num_peaks}, n={self.group_size})"
        )


class EddieModel:
    """The full trained model for one program."""

    def __init__(
        self,
        program_name: str,
        config: EddieConfig,
        profiles: Dict[str, RegionProfile],
        successors: Dict[str, List[str]],
        initial_regions: Sequence[str],
        sample_rate: float,
        calibration: Optional[CalibrationInfo] = None,
    ) -> None:
        if not profiles:
            raise TrainingError("model has no region profiles")
        unknown = set(successors) - set(profiles)
        # Successor lists may mention regions never observed in training;
        # keep them (monitoring simply cannot transition into them).
        self.program_name = program_name
        self.config = config
        self.profiles = profiles
        self.successors = {k: list(v) for k, v in successors.items()}
        self.initial_regions = [r for r in initial_regions if r in profiles] or list(
            profiles
        )[:1]
        self.sample_rate = float(sample_rate)
        self.calibration = calibration
        del unknown

    @property
    def is_derived(self) -> bool:
        """Whether this model was calibrated from a base model."""
        return self.calibration is not None

    def profile(self, region: str) -> RegionProfile:
        try:
            return self.profiles[region]
        except KeyError:
            raise ConfigurationError(f"model has no profile for {region!r}") from None

    def candidate_regions(self, current: str) -> List[str]:
        """Regions execution may plausibly be in after leaving ``current``.

        Direct successors plus their successors (two steps), because
        inter-loop regions can be too brief to yield a full STS group --
        the execution may already be in the *next* loop by the time the
        K-S test notices the change.
        """
        seen: Dict[str, None] = {}
        for succ in self.successors.get(current, []):
            if succ in self.profiles and succ != current:
                seen.setdefault(succ, None)
            for succ2 in self.successors.get(succ, []):
                if succ2 in self.profiles and succ2 != current:
                    seen.setdefault(succ2, None)
        return list(seen)

    @property
    def max_group_size(self) -> int:
        return max(p.group_size for p in self.profiles.values())

    @property
    def hop_duration(self) -> float:
        """Time between consecutive STSs, in seconds."""
        hop = int(round(self.config.window_samples * (1 - self.config.overlap)))
        return max(1, hop) / self.sample_rate

    def with_group_size(self, group_size: int) -> "EddieModel":
        """A copy with every region forced to one group size.

        Used by the latency sweeps (Figures 6-10): detection latency is
        varied by varying n.
        """
        profiles = {
            name: RegionProfile(
                name=p.name,
                reference=p.reference,
                num_peaks=p.num_peaks,
                group_size=group_size,
                descriptor_dims=p.descriptor_dims,
            )
            for name, p in self.profiles.items()
        }
        return EddieModel(
            self.program_name,
            self.config,
            profiles,
            self.successors,
            self.initial_regions,
            self.sample_rate,
            calibration=self.calibration,
        )

    def with_alpha(self, alpha: float) -> "EddieModel":
        """A copy with a different K-S significance level (Figure 9)."""
        return EddieModel(
            self.program_name,
            replace(self.config, alpha=alpha),
            self.profiles,
            self.successors,
            self.initial_regions,
            self.sample_rate,
            calibration=self.calibration,
        )

    def with_quality_gating(self, enabled: bool = True) -> "EddieModel":
        """A copy with acquisition-quality gating toggled (DESIGN.md D14)."""
        return EddieModel(
            self.program_name,
            replace(self.config, quality_gating=enabled),
            self.profiles,
            self.successors,
            self.initial_regions,
            self.sample_rate,
            calibration=self.calibration,
        )

    def with_calibrated_references(
        self,
        references: Dict[str, np.ndarray],
        calibration: CalibrationInfo,
        sample_rate: Optional[float] = None,
    ) -> "EddieModel":
        """Derived-model constructor (``with_*`` style, DESIGN.md D23).

        Replaces per-region reference arrays with warped copies while
        keeping the state machine, per-region group sizes, and tested
        dimensions of the base model. Every replacement must match its
        base region's shape exactly: calibration warps observations, it
        never adds or drops them. ``sample_rate`` may be updated to the
        target device's estimated rate so hop timing follows the warp.
        """
        unknown = set(references) - set(self.profiles)
        if unknown:
            raise TrainingError(
                f"calibrated references for unknown regions: {sorted(unknown)}"
            )
        profiles = {}
        for name, base in self.profiles.items():
            warped = references.get(name)
            if warped is None:
                profiles[name] = base
                continue
            warped = np.asarray(warped, dtype=float)
            if warped.shape != base.reference.shape:
                raise TrainingError(
                    f"region {name!r}: warped reference shape {warped.shape} "
                    f"!= base {base.reference.shape}"
                )
            if not np.array_equal(np.isnan(warped), np.isnan(base.reference)):
                raise TrainingError(
                    f"region {name!r}: warp changed the NaN padding mask"
                )
            profiles[name] = RegionProfile(
                name=base.name,
                reference=warped,
                num_peaks=base.num_peaks,
                group_size=base.group_size,
                descriptor_dims=base.descriptor_dims,
            )
        return EddieModel(
            self.program_name,
            self.config,
            profiles,
            self.successors,
            self.initial_regions,
            self.sample_rate if sample_rate is None else float(sample_rate),
            calibration=calibration,
        )

    def __repr__(self) -> str:
        return (
            f"EddieModel({self.program_name!r}, regions={len(self.profiles)})"
        )
