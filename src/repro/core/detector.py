"""High-level EDDIE facade.

Typical use::

    from repro import Eddie
    from repro.programs.mibench import bitcount
    from repro.arch.config import CoreConfig

    eddie = Eddie()
    detector = eddie.train(bitcount(), core=CoreConfig.iot_inorder(1e8),
                           runs=10, seed=0)

    # Monitor a clean run captured from the bound source:
    report = detector.monitor(seed=100)
    assert not report.metrics.detected

    # Monitor an attacked run:
    detector.source.simulator.set_loop_injection("count_bits", injected, 1.0)
    report = detector.monitor(seed=101)

``TrainedDetector.monitor`` is polymorphic: pass nothing (capture from
the bound source), a raw :class:`~repro.types.Signal`, or a captured
trace -- it always returns a :class:`MonitorReport`. The pre-redesign
``monitor_signal`` / ``monitor_trace`` / ``monitor_program`` methods
survive as deprecated aliases.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.config import CoreConfig
from repro.arch.simulator import SimulationResult, Simulator
from repro.core.metrics import RunMetrics, evaluate_run
from repro.core.model import EddieConfig, EddieModel
from repro.core.monitor import Monitor, MonitorResult
from repro.core.training import Trainer
from repro.em.scenario import EmScenario, EmTrace
from repro.errors import ConfigurationError, MonitoringError
from repro.obs import OBS, histogram, record_count, span
from repro.programs.ir import Program
from repro.types import RegionTimeline, Signal

# Coarse decade bins: trace mean power spans orders of magnitude between
# the simulator's power traces and the receiver's IQ envelopes.
_TRACE_POWER_EDGES = tuple(float(10.0 ** e) for e in range(-12, 9, 2))

__all__ = ["Eddie", "TrainedDetector", "MonitorReport"]

TraceLike = Union[EmTrace, SimulationResult]


def _signal_of(trace: TraceLike) -> Signal:
    """The monitored signal of a trace: EM IQ or simulator power."""
    if isinstance(trace, EmTrace):
        return trace.iq
    if isinstance(trace, SimulationResult):
        return trace.power
    raise MonitoringError(f"unsupported trace type {type(trace).__name__}")


@dataclass
class MonitorReport:
    """Result of monitoring one run, with ground truth when available.

    ``trace`` is ``None`` when the run came from a raw
    :class:`~repro.types.Signal` (no ground truth to score against --
    the metrics then only describe the report stream itself).
    """

    result: MonitorResult
    metrics: RunMetrics
    trace: Optional[TraceLike] = None

    @property
    def anomalies(self) -> List[float]:
        """Times of reported anomalies."""
        return [r.time for r in self.result.reports]

    @property
    def detected(self) -> bool:
        return self.metrics.detected


class TrainedDetector:
    """A trained EDDIE model bound to the source it was trained on."""

    def __init__(
        self,
        model: EddieModel,
        source: Optional[Union[EmScenario, Simulator]] = None,
    ) -> None:
        self.model = model
        self.source = source

    # -- monitoring -------------------------------------------------------------

    def monitor(
        self,
        source: Optional[Union[Signal, TraceLike]] = None,
        *,
        seed: Optional[int] = None,
        inputs=None,
    ) -> MonitorReport:
        """Run Algorithm 1 over any monitorable source.

        Dispatches on ``source``:

        - ``None``: capture a fresh run from the bound source (injections
          configured on its simulator apply -- the one-call way to run an
          attack experiment); ``seed``/``inputs`` parameterize the run.
        - a :class:`~repro.types.Signal`: monitor raw samples with no
          ground truth (``report.trace`` is ``None`` and the metrics only
          describe the report stream).
        - an :class:`EmTrace` or :class:`SimulationResult`: monitor the
          captured signal and score against the trace's ground truth.

        Always returns a :class:`MonitorReport`.
        """
        if source is None:
            if self.source is None:
                raise MonitoringError(
                    "detector has no bound source; pass a Signal or a "
                    "captured trace to monitor()"
                )
            source = _capture(self.source, seed=seed, inputs=inputs)
        elif seed is not None or inputs is not None:
            raise MonitoringError(
                "seed/inputs only apply when capturing from the bound "
                "source (monitor() with no positional argument)"
            )
        if isinstance(source, Signal):
            result = self._score_signal(source)
            metrics = self._evaluate(result, RegionTimeline(), [], ())
            return MonitorReport(result=result, metrics=metrics, trace=None)
        if isinstance(source, (EmTrace, SimulationResult)):
            trace = source
            result = self._score_signal(_signal_of(trace))
            metrics = self._evaluate(
                result,
                trace.timeline,
                trace.injected_spans,
                getattr(trace, "fault_spans", ()),
            )
            return MonitorReport(result=result, metrics=metrics, trace=trace)
        raise MonitoringError(
            f"cannot monitor a {type(source).__name__}; expected a Signal, "
            f"an EmTrace, or a SimulationResult"
        )

    def stream(
        self,
        *,
        batched: bool = True,
        early_exit: bool = False,
        keep_history: bool = False,
        t0: float = 0.0,
        session_id: str = "",
    ):
        """An online :class:`~repro.stream.StreamingMonitor` for this model.

        Feed it IQ chunks as they arrive; results are bit-identical to
        ``monitor()`` over the same samples (DESIGN.md D17).
        """
        from repro.stream import StreamingMonitor

        return StreamingMonitor(
            self.model,
            batched=batched,
            early_exit=early_exit,
            keep_history=keep_history,
            t0=t0,
            session_id=session_id,
        )

    def _score_signal(self, signal: Signal) -> MonitorResult:
        if OBS.enabled:
            histogram(
                "core.detector", "trace_mean_power", _TRACE_POWER_EDGES
            ).record(float(np.mean(np.abs(signal.samples) ** 2)))
        with span("monitor.trace"):
            return Monitor(self.model).run_signal(signal)

    def _evaluate(
        self, result, timeline, injected_spans, fault_spans
    ) -> RunMetrics:
        cfg = self.model.config
        hop = self.model.hop_duration
        return evaluate_run(
            result,
            timeline,
            injected_spans,
            window_duration=cfg.window_samples / self.model.sample_rate,
            hop_duration=hop,
            report_linger=self.model.max_group_size * hop,
            fault_spans=fault_spans,
        )

    # -- deprecated pre-consolidation aliases --------------------------------

    def monitor_signal(self, signal: Signal) -> MonitorResult:
        """Deprecated: use ``monitor(signal).result``."""
        warnings.warn(
            "TrainedDetector.monitor_signal is deprecated; use "
            "monitor(signal), which returns a full MonitorReport",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.monitor(signal).result

    def monitor_trace(self, trace: TraceLike) -> MonitorReport:
        """Deprecated: use ``monitor(trace)``."""
        warnings.warn(
            "TrainedDetector.monitor_trace is deprecated; use "
            "monitor(trace)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.monitor(trace)

    def monitor_program(
        self, seed: Optional[int] = None, inputs=None
    ) -> MonitorReport:
        """Deprecated: use ``monitor(seed=..., inputs=...)``."""
        warnings.warn(
            "TrainedDetector.monitor_program is deprecated; use "
            "monitor(seed=..., inputs=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.monitor(seed=seed, inputs=inputs)

    # -- model tweaking (experiment knobs) -----------------------------------------

    def with_group_size(self, group_size: int) -> "TrainedDetector":
        """A detector variant with a forced K-S group size (latency sweeps)."""
        return TrainedDetector(self.model.with_group_size(group_size), self.source)

    def with_alpha(self, alpha: float) -> "TrainedDetector":
        """A detector variant with a different K-S confidence (Figure 9)."""
        return TrainedDetector(self.model.with_alpha(alpha), self.source)

    def with_quality_gating(self, enabled: bool = True) -> "TrainedDetector":
        """A detector variant with acquisition-quality gating toggled.

        With gating on, windows whose raw samples show acquisition faults
        (clipping, overflow gaps, dead stretches, energy outliers) are
        treated as unscorable instead of anomalous, and the monitor
        resynchronizes after gaps (DESIGN.md D14).
        """
        return TrainedDetector(
            self.model.with_quality_gating(enabled), self.source
        )


def _capture(
    source: Union[EmScenario, Simulator], seed: Optional[int], inputs
) -> TraceLike:
    if isinstance(source, EmScenario):
        return source.capture(seed=seed, inputs=inputs)
    if isinstance(source, Simulator):
        return source.run(seed=seed, inputs=inputs)
    raise MonitoringError(f"unsupported source type {type(source).__name__}")


class Eddie:
    """Trainer/factory for EDDIE detectors."""

    def __init__(self, config: Optional[EddieConfig] = None) -> None:
        self.config = config or EddieConfig()

    def train(
        self,
        program: Program,
        core: Optional[CoreConfig] = None,
        runs: int = 10,
        seed: int = 0,
        source: str = "em",
        scenario: Optional[EmScenario] = None,
        build_seed: int = 0,
    ) -> TrainedDetector:
        """Train on freshly simulated, injection-free runs of ``program``.

        Args:
            program: the application to model.
            core: processor model (defaults to the paper's IoT in-order
                core for ``source='em'`` and the SESC OOO core otherwise).
            runs: number of training runs, each with freshly sampled
                inputs (the paper uses 25 for the IoT setup, 10 for
                simulation).
            seed: base RNG seed; run k uses ``seed + k``.
            source: ``'em'`` (EM IQ capture through the channel model) or
                ``'power'`` (the simulator's power signal, as in Table 2).
            scenario: a pre-built :class:`EmScenario` to train on (takes
                precedence over ``core``/``source``).
        """
        if scenario is not None:
            bound: Union[EmScenario, Simulator] = scenario
        elif source == "em":
            bound = EmScenario.build(program, core=core or CoreConfig.iot_inorder())
        elif source == "power":
            bound = Simulator(program, core or CoreConfig.sim_ooo())
        else:
            raise ConfigurationError(f"unknown source {source!r}")

        machine = (
            bound.machine if isinstance(bound, EmScenario) else bound.machine
        )
        trainer = Trainer(
            program_name=program.name,
            successors={r: machine.successors(r) for r in machine.region_names()},
            initial_regions=machine.initial_regions(),
            config=self.config,
        )
        with span("train"):
            for k in range(runs):
                trace = _capture(bound, seed=seed + k, inputs=None)
                if trace.injected_instr_count:
                    raise ConfigurationError(
                        "training source has injections configured; train on "
                        "clean runs only"
                    )
                trainer.add_run(_signal_of(trace), trace.timeline)
            model = trainer.build(seed=build_seed)
        if OBS.enabled:
            record_count("core.detector", "training_runs", runs)
            record_count("core.detector", "models_trained")
        return TrainedDetector(model, source=bound)

    def train_from_runs(
        self,
        program_name: str,
        runs: Sequence[Tuple[Signal, RegionTimeline]],
        successors: dict,
        initial_regions: Sequence[str],
        build_seed: int = 0,
    ) -> TrainedDetector:
        """Train from pre-captured (signal, timeline) pairs."""
        trainer = Trainer(
            program_name=program_name,
            successors=successors,
            initial_regions=initial_regions,
            config=self.config,
        )
        for signal, timeline in runs:
            trainer.add_run(signal, timeline)
        return TrainedDetector(trainer.build(seed=build_seed), source=None)
