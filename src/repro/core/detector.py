"""High-level EDDIE facade.

Typical use::

    from repro import Eddie
    from repro.programs.mibench import bitcount
    from repro.arch.config import CoreConfig

    eddie = Eddie()
    detector = eddie.train(bitcount(), core=CoreConfig.iot_inorder(1e8),
                           runs=10, seed=0)

    # Monitor a clean run:
    report = detector.monitor_program(seed=100)
    assert not report.metrics.detected

    # Monitor an attacked run:
    detector.source.simulator.set_loop_injection("count_bits", injected, 1.0)
    report = detector.monitor_program(seed=101)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.config import CoreConfig
from repro.arch.simulator import SimulationResult, Simulator
from repro.core.metrics import RunMetrics, evaluate_run
from repro.core.model import EddieConfig, EddieModel
from repro.core.monitor import Monitor, MonitorResult
from repro.core.training import Trainer
from repro.em.scenario import EmScenario, EmTrace
from repro.errors import ConfigurationError, MonitoringError
from repro.obs import OBS, histogram, record_count, span
from repro.programs.ir import Program
from repro.types import RegionTimeline, Signal

# Coarse decade bins: trace mean power spans orders of magnitude between
# the simulator's power traces and the receiver's IQ envelopes.
_TRACE_POWER_EDGES = tuple(float(10.0 ** e) for e in range(-12, 9, 2))

__all__ = ["Eddie", "TrainedDetector", "MonitorReport"]

TraceLike = Union[EmTrace, SimulationResult]


def _signal_of(trace: TraceLike) -> Signal:
    """The monitored signal of a trace: EM IQ or simulator power."""
    if isinstance(trace, EmTrace):
        return trace.iq
    if isinstance(trace, SimulationResult):
        return trace.power
    raise MonitoringError(f"unsupported trace type {type(trace).__name__}")


@dataclass
class MonitorReport:
    """Result of monitoring one run with ground truth attached."""

    result: MonitorResult
    metrics: RunMetrics
    trace: TraceLike

    @property
    def anomalies(self) -> List[float]:
        """Times of reported anomalies."""
        return [r.time for r in self.result.reports]

    @property
    def detected(self) -> bool:
        return self.metrics.detected


class TrainedDetector:
    """A trained EDDIE model bound to the source it was trained on."""

    def __init__(
        self,
        model: EddieModel,
        source: Optional[Union[EmScenario, Simulator]] = None,
    ) -> None:
        self.model = model
        self.source = source

    # -- monitoring -------------------------------------------------------------

    def monitor_signal(self, signal: Signal) -> MonitorResult:
        """Run Algorithm 1 over a raw signal (no ground truth needed)."""
        return Monitor(self.model).run_signal(signal)

    def monitor_trace(self, trace: TraceLike) -> MonitorReport:
        """Monitor a captured trace and score it against its ground truth."""
        signal = _signal_of(trace)
        if OBS.enabled:
            histogram(
                "core.detector", "trace_mean_power", _TRACE_POWER_EDGES
            ).record(float(np.mean(np.abs(signal.samples) ** 2)))
        with span("monitor.trace"):
            result = self.monitor_signal(signal)
        cfg = self.model.config
        hop = self.model.hop_duration
        metrics = evaluate_run(
            result,
            trace.timeline,
            trace.injected_spans,
            window_duration=cfg.window_samples / self.model.sample_rate,
            hop_duration=hop,
            report_linger=self.model.max_group_size * hop,
            fault_spans=getattr(trace, "fault_spans", ()),
        )
        return MonitorReport(result=result, metrics=metrics, trace=trace)

    def monitor_program(
        self, seed: Optional[int] = None, inputs=None
    ) -> MonitorReport:
        """Capture a fresh run from the bound source and monitor it.

        Injections configured on the source's simulator apply, so this is
        the one-call way to run an attack experiment.
        """
        if self.source is None:
            raise MonitoringError(
                "detector has no bound source; use monitor_trace/monitor_signal"
            )
        trace = _capture(self.source, seed=seed, inputs=inputs)
        return self.monitor_trace(trace)

    # -- model tweaking (experiment knobs) -----------------------------------------

    def with_group_size(self, group_size: int) -> "TrainedDetector":
        """A detector variant with a forced K-S group size (latency sweeps)."""
        return TrainedDetector(self.model.with_group_size(group_size), self.source)

    def with_alpha(self, alpha: float) -> "TrainedDetector":
        """A detector variant with a different K-S confidence (Figure 9)."""
        return TrainedDetector(self.model.with_alpha(alpha), self.source)

    def with_quality_gating(self, enabled: bool = True) -> "TrainedDetector":
        """A detector variant with acquisition-quality gating toggled.

        With gating on, windows whose raw samples show acquisition faults
        (clipping, overflow gaps, dead stretches, energy outliers) are
        treated as unscorable instead of anomalous, and the monitor
        resynchronizes after gaps (DESIGN.md D14).
        """
        return TrainedDetector(
            self.model.with_quality_gating(enabled), self.source
        )


def _capture(
    source: Union[EmScenario, Simulator], seed: Optional[int], inputs
) -> TraceLike:
    if isinstance(source, EmScenario):
        return source.capture(seed=seed, inputs=inputs)
    if isinstance(source, Simulator):
        return source.run(seed=seed, inputs=inputs)
    raise MonitoringError(f"unsupported source type {type(source).__name__}")


class Eddie:
    """Trainer/factory for EDDIE detectors."""

    def __init__(self, config: Optional[EddieConfig] = None) -> None:
        self.config = config or EddieConfig()

    def train(
        self,
        program: Program,
        core: Optional[CoreConfig] = None,
        runs: int = 10,
        seed: int = 0,
        source: str = "em",
        scenario: Optional[EmScenario] = None,
        build_seed: int = 0,
    ) -> TrainedDetector:
        """Train on freshly simulated, injection-free runs of ``program``.

        Args:
            program: the application to model.
            core: processor model (defaults to the paper's IoT in-order
                core for ``source='em'`` and the SESC OOO core otherwise).
            runs: number of training runs, each with freshly sampled
                inputs (the paper uses 25 for the IoT setup, 10 for
                simulation).
            seed: base RNG seed; run k uses ``seed + k``.
            source: ``'em'`` (EM IQ capture through the channel model) or
                ``'power'`` (the simulator's power signal, as in Table 2).
            scenario: a pre-built :class:`EmScenario` to train on (takes
                precedence over ``core``/``source``).
        """
        if scenario is not None:
            bound: Union[EmScenario, Simulator] = scenario
        elif source == "em":
            bound = EmScenario.build(program, core=core or CoreConfig.iot_inorder())
        elif source == "power":
            bound = Simulator(program, core or CoreConfig.sim_ooo())
        else:
            raise ConfigurationError(f"unknown source {source!r}")

        machine = (
            bound.machine if isinstance(bound, EmScenario) else bound.machine
        )
        trainer = Trainer(
            program_name=program.name,
            successors={r: machine.successors(r) for r in machine.region_names()},
            initial_regions=machine.initial_regions(),
            config=self.config,
        )
        with span("train"):
            for k in range(runs):
                trace = _capture(bound, seed=seed + k, inputs=None)
                if trace.injected_instr_count:
                    raise ConfigurationError(
                        "training source has injections configured; train on "
                        "clean runs only"
                    )
                trainer.add_run(_signal_of(trace), trace.timeline)
            model = trainer.build(seed=build_seed)
        if OBS.enabled:
            record_count("core.detector", "training_runs", runs)
            record_count("core.detector", "models_trained")
        return TrainedDetector(model, source=bound)

    def train_from_runs(
        self,
        program_name: str,
        runs: Sequence[Tuple[Signal, RegionTimeline]],
        successors: dict,
        initial_regions: Sequence[str],
        build_seed: int = 0,
    ) -> TrainedDetector:
        """Train from pre-captured (signal, timeline) pairs."""
        trainer = Trainer(
            program_name=program_name,
            successors=successors,
            initial_regions=initial_regions,
            config=self.config,
        )
        for signal, timeline in runs:
            trainer.add_run(signal, timeline)
        return TrainedDetector(trainer.build(seed=build_seed), source=None)
