"""Spectral-peak extraction (Section 4.1 of the paper).

A *peak frequency* is a frequency at which at least ``energy_fraction``
(the paper uses 1%) of the entire window's signal energy is concentrated.
Peaks are reported strongest-first, because EDDIE's statistics compare
windows dimension-by-dimension: one K-S test on the strongest peak's
frequency, another on the second-strongest, and so on (Section 4.2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.stft import SpectrumSequence
from repro.errors import SignalError

__all__ = [
    "extract_peaks",
    "peak_matrix",
    "spectral_descriptors",
    "DEFAULT_ENERGY_FRACTION",
]

DEFAULT_ENERGY_FRACTION = 0.01


def extract_peaks(
    power: np.ndarray,
    freqs: np.ndarray,
    energy_fraction: float = DEFAULT_ENERGY_FRACTION,
    max_peaks: int = 20,
    min_prominence: float = 15.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract the peak frequencies of one spectrum.

    Args:
        power: power spectrum of one window.
        freqs: bin frequencies.
        energy_fraction: minimum share of window energy a bin must hold.
        max_peaks: keep at most this many peaks.
        min_prominence: minimum ratio of a peak bin to the median bin
            power. The paper's 1%-of-energy criterion presupposes fine
            spectral resolution: with few bins, even white noise puts >1%
            of the window's energy into its maximum bin (max of N
            exponentials ~ ln(N) times the mean). The prominence floor is
            the resolution-independent reading of "energy *concentrated*
            at a frequency": a true spectral line towers over the noise
            floor; a noise maximum does not. 0 disables the check.

    Returns:
        (peak_freqs, peak_powers), both sorted by descending power.
    """
    if len(power) != len(freqs):
        raise SignalError(
            f"power has {len(power)} bins but freqs has {len(freqs)}"
        )
    if not 0.0 < energy_fraction < 1.0:
        raise SignalError(f"energy_fraction must be in (0, 1), got {energy_fraction}")
    total = power.sum()
    if total <= 0:
        return np.empty(0), np.empty(0)

    threshold = energy_fraction * total
    if min_prominence > 0:
        floor = min_prominence * float(np.median(power))
        threshold = max(threshold, floor)
    # Local maxima: strictly above at least one neighbour and not below
    # either (plateau edges count once via strict left comparison).
    left = np.empty(len(power))
    right = np.empty(len(power))
    left[0] = -np.inf
    left[1:] = power[:-1]
    right[-1] = -np.inf
    right[:-1] = power[1:]
    is_peak = (power > left) & (power >= right) & (power >= threshold)
    idx = np.nonzero(is_peak)[0]
    if len(idx) == 0:
        return np.empty(0), np.empty(0)

    order = np.argsort(power[idx])[::-1][:max_peaks]
    chosen = idx[order]
    return freqs[chosen].copy(), power[chosen].copy()


def spectral_descriptors(power: np.ndarray, freqs: np.ndarray) -> Tuple[float, float]:
    """Diffuse-spectrum descriptors of one window: centroid and bandwidth.

    The paper's accuracy post-mortem (Section 5.2) suggests that "better
    consideration of diffuse spectral features may improve EDDIE's
    accuracy": regions whose energy forms a hump rather than discrete
    peaks still carry *where* the hump sits (the power-weighted centroid)
    and *how wide* it is (the power-weighted spread). Both are frequencies,
    so they drop into the same per-dimension K-S machinery as peaks.
    """
    total = power.sum()
    if total <= 0:
        return (np.nan, np.nan)
    weights = power / total
    centroid = float(np.dot(weights, freqs))
    spread = float(np.sqrt(np.dot(weights, (freqs - centroid) ** 2)))
    return (centroid, spread)


def peak_matrix(
    spectra: SpectrumSequence,
    energy_fraction: float = DEFAULT_ENERGY_FRACTION,
    max_peaks: int = 20,
    min_prominence: float = 15.0,
    descriptors: bool = False,
) -> np.ndarray:
    """Peak frequencies of every window of a spectrum sequence.

    Returns an array of shape ``(n_windows, max_peaks)`` where row i holds
    window i's peak frequencies sorted strongest-first, NaN-padded when a
    window has fewer peaks (e.g. the paper's peak-less GSM loop). With
    ``descriptors=True`` two extra columns are appended: the spectral
    centroid and bandwidth of each window (see
    :func:`spectral_descriptors`), giving shape
    ``(n_windows, max_peaks + 2)``.
    """
    width = max_peaks + (2 if descriptors else 0)
    out = np.full((len(spectra), width), np.nan)
    for i in range(len(spectra)):
        freqs, _ = extract_peaks(
            spectra.power[i], spectra.freqs, energy_fraction, max_peaks,
            min_prominence,
        )
        out[i, : len(freqs)] = freqs
        if descriptors:
            out[i, max_peaks:] = spectral_descriptors(
                spectra.power[i], spectra.freqs
            )
    return out
