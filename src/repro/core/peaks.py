"""Spectral-peak extraction (Section 4.1 of the paper).

A *peak frequency* is a frequency at which at least ``energy_fraction``
(the paper uses 1%) of the entire window's signal energy is concentrated.
Peaks are reported strongest-first, because EDDIE's statistics compare
windows dimension-by-dimension: one K-S test on the strongest peak's
frequency, another on the second-strongest, and so on (Section 4.2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.stft import SpectrumSequence
from repro.errors import SignalError

__all__ = [
    "extract_peaks",
    "peak_matrix",
    "peak_rows",
    "spectral_descriptors",
    "DEFAULT_ENERGY_FRACTION",
]

DEFAULT_ENERGY_FRACTION = 0.01


def extract_peaks(
    power: np.ndarray,
    freqs: np.ndarray,
    energy_fraction: float = DEFAULT_ENERGY_FRACTION,
    max_peaks: int = 20,
    min_prominence: float = 15.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract the peak frequencies of one spectrum.

    Args:
        power: power spectrum of one window.
        freqs: bin frequencies.
        energy_fraction: minimum share of window energy a bin must hold.
        max_peaks: keep at most this many peaks.
        min_prominence: minimum ratio of a peak bin to the median bin
            power. The paper's 1%-of-energy criterion presupposes fine
            spectral resolution: with few bins, even white noise puts >1%
            of the window's energy into its maximum bin (max of N
            exponentials ~ ln(N) times the mean). The prominence floor is
            the resolution-independent reading of "energy *concentrated*
            at a frequency": a true spectral line towers over the noise
            floor; a noise maximum does not. 0 disables the check.

    Returns:
        (peak_freqs, peak_powers), both sorted by descending power.
    """
    if len(power) != len(freqs):
        raise SignalError(
            f"power has {len(power)} bins but freqs has {len(freqs)}"
        )
    if not 0.0 < energy_fraction < 1.0:
        raise SignalError(f"energy_fraction must be in (0, 1), got {energy_fraction}")
    total = power.sum()
    if total <= 0:
        return np.empty(0), np.empty(0)

    threshold = energy_fraction * total
    if min_prominence > 0:
        floor = min_prominence * float(np.median(power))
        threshold = max(threshold, floor)
    # Local maxima: strictly above at least one neighbour and not below
    # either (plateau edges count once via strict left comparison).
    left = np.empty(len(power))
    right = np.empty(len(power))
    left[0] = -np.inf
    left[1:] = power[:-1]
    right[-1] = -np.inf
    right[:-1] = power[1:]
    is_peak = (power > left) & (power >= right) & (power >= threshold)
    idx = np.nonzero(is_peak)[0]
    if len(idx) == 0:
        return np.empty(0), np.empty(0)

    # Stable sort so ties in power break deterministically (by descending
    # bin index after the reversal) -- the vectorized multi-window path
    # (:func:`peak_rows`) orders ties the same way, keeping the two
    # implementations bit-identical.
    order = np.argsort(power[idx], kind="stable")[::-1][:max_peaks]
    chosen = idx[order]
    return freqs[chosen].copy(), power[chosen].copy()


def spectral_descriptors(power: np.ndarray, freqs: np.ndarray) -> Tuple[float, float]:
    """Diffuse-spectrum descriptors of one window: centroid and bandwidth.

    The paper's accuracy post-mortem (Section 5.2) suggests that "better
    consideration of diffuse spectral features may improve EDDIE's
    accuracy": regions whose energy forms a hump rather than discrete
    peaks still carry *where* the hump sits (the power-weighted centroid)
    and *how wide* it is (the power-weighted spread). Both are frequencies,
    so they drop into the same per-dimension K-S machinery as peaks.
    """
    total = power.sum()
    if total <= 0:
        return (np.nan, np.nan)
    weights = power / total
    centroid = float(np.dot(weights, freqs))
    spread = float(np.sqrt(np.dot(weights, (freqs - centroid) ** 2)))
    return (centroid, spread)


def peak_rows(
    power: np.ndarray,
    freqs: np.ndarray,
    energy_fraction: float = DEFAULT_ENERGY_FRACTION,
    max_peaks: int = 20,
    min_prominence: float = 15.0,
    descriptors: bool = False,
) -> np.ndarray:
    """Peak frequencies of many spectra at once, vectorized.

    ``power`` has shape ``(n_windows, n_bins)``; the rows are independent,
    so this is exactly :func:`extract_peaks` applied per row (and
    :func:`spectral_descriptors` when ``descriptors``), bit-identical to
    the scalar loop -- the fleet kernel calls it on the pooled power
    matrix of a whole session group. The only per-window Python left is
    the descriptor dot products, which stay looped so BLAS batching
    cannot perturb their last-ulp rounding.

    Per-window candidate selection is vectorized end to end: local-maxima
    and threshold masks are 2-D ops, and the strongest-first ordering is
    one lexsort over all candidate bins keyed ``(window, -power, -bin)``
    -- the same order ``np.argsort(power[idx], kind='stable')[::-1]``
    produces in :func:`extract_peaks`, ties included.
    """
    power = np.asarray(power, dtype=float)
    freqs = np.asarray(freqs, dtype=float)
    if power.ndim != 2:
        raise SignalError(f"power must be 2-D, got shape {power.shape}")
    if power.shape[1] != len(freqs):
        raise SignalError(
            f"power has {power.shape[1]} bins but freqs has {len(freqs)}"
        )
    if not 0.0 < energy_fraction < 1.0:
        raise SignalError(
            f"energy_fraction must be in (0, 1), got {energy_fraction}"
        )
    n_windows, n_bins = power.shape
    width = max_peaks + (2 if descriptors else 0)
    out = np.full((n_windows, width), np.nan)
    if n_windows == 0:
        return out

    totals = power.sum(axis=1)
    scorable = totals > 0
    thresholds = energy_fraction * totals
    if min_prominence > 0:
        floors = min_prominence * np.median(power, axis=1)
        thresholds = np.maximum(thresholds, floors)
    left = np.empty_like(power)
    right = np.empty_like(power)
    left[:, 0] = -np.inf
    left[:, 1:] = power[:, :-1]
    right[:, -1] = -np.inf
    right[:, :-1] = power[:, 1:]
    is_peak = (
        (power > left)
        & (power >= right)
        & (power >= thresholds[:, None])
        & scorable[:, None]
    )
    win, bins = np.nonzero(is_peak)
    if len(win):
        # Candidates are already grouped by window (nonzero is row-major);
        # order each window's group by descending power, ties by
        # descending bin, in one lexsort over all candidates.
        order = np.lexsort((-bins, -power[win, bins], win))
        win = win[order]
        bins = bins[order]
        # Rank within each window = position minus the window's first slot.
        first = np.zeros(len(win), dtype=np.int64)
        new_window = np.empty(len(win), dtype=bool)
        new_window[0] = True
        new_window[1:] = win[1:] != win[:-1]
        first[new_window] = np.flatnonzero(new_window)
        first = np.maximum.accumulate(first)
        rank = np.arange(len(win), dtype=np.int64) - first
        keep = rank < max_peaks
        out[win[keep], rank[keep]] = freqs[bins[keep]]
    if descriptors:
        for i in range(n_windows):
            out[i, max_peaks:] = spectral_descriptors(power[i], freqs)
    return out


def peak_matrix(
    spectra: SpectrumSequence,
    energy_fraction: float = DEFAULT_ENERGY_FRACTION,
    max_peaks: int = 20,
    min_prominence: float = 15.0,
    descriptors: bool = False,
) -> np.ndarray:
    """Peak frequencies of every window of a spectrum sequence.

    Returns an array of shape ``(n_windows, max_peaks)`` where row i holds
    window i's peak frequencies sorted strongest-first, NaN-padded when a
    window has fewer peaks (e.g. the paper's peak-less GSM loop). With
    ``descriptors=True`` two extra columns are appended: the spectral
    centroid and bandwidth of each window (see
    :func:`spectral_descriptors`), giving shape
    ``(n_windows, max_peaks + 2)``. Delegates to the vectorized
    :func:`peak_rows`.
    """
    return peak_rows(
        spectra.power, spectra.freqs, energy_fraction, max_peaks,
        min_prominence, descriptors,
    )
