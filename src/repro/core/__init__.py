"""EDDIE's core: spectral analysis, statistics, training, and monitoring.

The pipeline mirrors Section 4 of the paper:

1. :mod:`repro.core.stft` turns the received signal into a sequence of
   Short-Term Spectra (STSs).
2. :mod:`repro.core.peaks` extracts each STS's spectral peaks (frequencies
   concentrating at least 1% of the window energy).
3. :mod:`repro.core.training` builds, for every region of the program's
   region-level state machine, a reference set of peak observations and
   selects the per-region K-S group size n (the paper's Figure 3 trade-off
   between detection accuracy and latency).
4. :mod:`repro.core.monitor` implements Algorithm 1: per-peak two-sample
   Kolmogorov-Smirnov tests of the recent STSs against the current region's
   reference, with region-transition tracking and anomaly reporting.
5. :mod:`repro.core.metrics` scores runs by the paper's Section 5.2
   definitions (detection latency, false positives, accuracy, coverage).

:class:`repro.core.detector.Eddie` wires all of it together.
"""

from repro.core.detector import Eddie, MonitorReport, TrainedDetector
from repro.core.model import EddieConfig, EddieModel, RegionProfile
from repro.core.stft import SpectrumSequence, stft

__all__ = [
    "Eddie",
    "TrainedDetector",
    "MonitorReport",
    "EddieModel",
    "EddieConfig",
    "RegionProfile",
    "SpectrumSequence",
    "stft",
]
