"""EDDIE training (Sections 4.1 and 4.3 of the paper).

Training consumes instrumented, injection-free runs -- each a (signal,
region timeline) pair -- and produces an :class:`~repro.core.model.EddieModel`:

1. every run's signal becomes an STS sequence; each STS is labelled with
   the region that produced it (via the instrumentation timeline);
2. per region, the labelled STSs' peak vectors form the reference set;
3. per region, the K-S group size n is selected by sweeping candidate
   values over held-out training windows and taking the smallest n that
   achieves the minimum false-rejection rate (the paper's Figure 3
   procedure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.model import EddieConfig, EddieModel, RegionProfile
from repro.core.peaks import peak_matrix
from repro.core.stats import two_sample_reject
from repro.core.stft import (
    QF_UNSCORABLE,
    SpectrumSequence,
    stft,
    window_quality,
)
from repro.errors import TrainingError
from repro.types import RegionTimeline, Signal

__all__ = [
    "Trainer",
    "LabelledRun",
    "label_windows",
    "select_group_size",
    "group_rejection_rates",
]


def label_windows(
    spectra: SpectrumSequence, timeline: RegionTimeline
) -> List[Optional[str]]:
    """Attribute each STS window to the region that dominated it."""
    labels: List[Optional[str]] = []
    for i in range(len(spectra)):
        start, end = spectra.window_span(i)
        labels.append(timeline.dominant_region(start, end))
    return labels


@dataclass
class LabelledRun:
    """One training run reduced to labelled peak observations."""

    peaks: np.ndarray  # (n_windows, max_peaks)
    labels: List[Optional[str]]

    def windows_of(self, region: str) -> np.ndarray:
        """Peak rows of this run attributed to ``region`` (in time order)."""
        mask = np.array([lbl == region for lbl in self.labels])
        return self.peaks[mask]


class Trainer:
    """Accumulates training runs and builds the model."""

    def __init__(
        self,
        program_name: str,
        successors: Dict[str, List[str]],
        initial_regions: Sequence[str],
        config: Optional[EddieConfig] = None,
    ) -> None:
        self.program_name = program_name
        self.successors = successors
        self.initial_regions = list(initial_regions)
        self.config = config or EddieConfig()
        self._runs: List[LabelledRun] = []
        self._sample_rate: Optional[float] = None

    def add_run(self, signal: Signal, timeline: RegionTimeline) -> None:
        """Ingest one instrumented, injection-free training run."""
        if self._sample_rate is None:
            self._sample_rate = signal.sample_rate
        elif signal.sample_rate != self._sample_rate:
            raise TrainingError(
                f"training runs disagree on sample rate "
                f"({self._sample_rate} vs {signal.sample_rate})"
            )
        cfg = self.config
        if cfg.frontend:
            from repro.dsp import apply_frontend

            # Same placement as monitoring: the chain runs between
            # capture and STFT, and quality flags are computed on the
            # processed stream (matching the streaming path bit for bit).
            signal = apply_frontend(cfg.frontend, signal)
        spectra = stft(signal, cfg.window_samples, cfg.overlap)
        peaks = peak_matrix(spectra, cfg.energy_fraction, cfg.max_peaks,
                            cfg.peak_prominence, cfg.diffuse_features)
        labels = label_windows(spectra, timeline)
        if cfg.quality_gating:
            # Even "clean" training captures can carry front-end hiccups;
            # corrupted windows must not pollute the reference sets.
            quality = window_quality(
                signal, cfg.window_samples, cfg.overlap,
                clip_fraction=cfg.clip_fraction,
                gap_samples=cfg.gap_samples,
                dead_fraction=cfg.dead_fraction,
                energy_outlier_mads=cfg.energy_outlier_mads,
            )
            labels = [
                None if (q & QF_UNSCORABLE) else lbl
                for lbl, q in zip(labels, quality)
            ]
        self._runs.append(LabelledRun(peaks, labels))

    @property
    def run_count(self) -> int:
        return len(self._runs)

    def build(self, seed: int = 0) -> EddieModel:
        """Assemble the model from all ingested runs."""
        if not self._runs:
            raise TrainingError("no training runs ingested")
        rng = np.random.default_rng(seed)
        cfg = self.config

        regions = self._observed_regions()
        if not regions:
            raise TrainingError("no region received any training windows")

        # Hold out the last ~30% of runs (at least one, if we have more
        # than one run) for group-size validation.
        n_holdout = max(1, len(self._runs) * 3 // 10) if len(self._runs) > 1 else 0
        ref_runs = self._runs[: len(self._runs) - n_holdout] or self._runs
        val_runs = self._runs[len(self._runs) - n_holdout:] or self._runs

        profiles: Dict[str, RegionProfile] = {}
        for region in regions:
            reference = np.concatenate(
                [run.windows_of(region) for run in ref_runs], axis=0
            )
            if reference.shape[0] == 0:
                # Seen only in holdout runs; use those windows as reference.
                reference = np.concatenate(
                    [run.windows_of(region) for run in val_runs], axis=0
                )
            if reference.shape[0] == 0:
                continue
            if reference.shape[0] > cfg.reference_cap:
                keep = rng.choice(
                    reference.shape[0], size=cfg.reference_cap, replace=False
                )
                reference = reference[np.sort(keep)]

            num_peaks = _choose_num_peaks(reference, cfg)
            descriptor_dims = (
                (cfg.max_peaks, cfg.max_peaks + 1) if cfg.diffuse_features else ()
            )
            validation = np.concatenate(
                [run.windows_of(region) for run in val_runs], axis=0
            )
            dims = tuple(range(num_peaks)) + descriptor_dims
            group_size = select_group_size(
                reference, validation, dims, cfg
            )
            profiles[region] = RegionProfile(
                name=region,
                reference=reference,
                num_peaks=num_peaks,
                group_size=group_size,
                descriptor_dims=descriptor_dims,
            )

        if self._sample_rate is None:
            raise TrainingError("no training signal ingested")
        return EddieModel(
            program_name=self.program_name,
            config=cfg,
            profiles=profiles,
            successors=self.successors,
            initial_regions=self.initial_regions,
            sample_rate=self._sample_rate,
        )

    def _observed_regions(self) -> List[str]:
        seen: Dict[str, None] = {}
        for run in self._runs:
            for label in run.labels:
                if label is not None:
                    seen.setdefault(label, None)
        return list(seen)


_MAX_TESTED_PEAKS = 4


def _choose_num_peaks(reference: np.ndarray, config: EddieConfig) -> int:
    """Number of peak dimensions to test: the median peak count, capped.

    Dimensions beyond the median would be NaN in many windows, starving
    the K-S test of data. The cap exists because peaks beyond the first
    few are harmonics of the same loop lines: they move together with the
    fundamentals, so testing them adds family-wise false rejections
    (inflating the needed group size) without adding information. The cap
    also keeps the tested-dimension count comparable across cores whose
    clocks place different numbers of harmonics below Nyquist.

    Only the peak columns are counted; descriptor columns (when diffuse
    features are enabled) are tracked separately.
    """
    counts = (~np.isnan(reference[:, : config.max_peaks])).sum(axis=1)
    return min(int(np.median(counts)), _MAX_TESTED_PEAKS)


def select_group_size(
    reference: np.ndarray,
    validation: np.ndarray,
    dims,
    config: EddieConfig,
) -> int:
    """Select the K-S group size n for one region (paper Section 4.3).

    Slides a window of each candidate n over the held-out validation
    observations, runs the per-dimension K-S tests against the reference,
    and returns the smallest n achieving (within tolerance) the minimum
    false-rejection rate across all candidates. Larger n than that only
    costs latency.

    ``dims`` may be an int (test the first N columns) or an explicit
    sequence of column indices.
    """
    dims = _as_dims(dims)
    candidates = sorted(config.group_sizes)
    if not dims or len(validation) < min(candidates) + 1:
        return candidates[0]

    rates = group_rejection_rates(reference, validation, dims, config)
    if not rates:
        return candidates[0]

    best_rate = min(rates.values())
    tolerance = 0.005
    for n in candidates:
        if n in rates and rates[n] <= best_rate + tolerance:
            return n
    return candidates[-1]


def _as_dims(dims) -> tuple:
    """Normalize a dims spec: an int means the first N columns."""
    if isinstance(dims, (int, np.integer)):
        return tuple(range(int(dims)))
    return tuple(int(d) for d in dims)


def group_rejection_rates(
    reference: np.ndarray,
    validation: np.ndarray,
    dims,
    config: EddieConfig,
    group_sizes: Optional[Sequence[int]] = None,
) -> Dict[int, float]:
    """False-rejection rate of the K-S test per candidate group size n.

    This is the data behind the paper's Figure 3: slide groups of each n
    over injection-free validation observations and count groups where any
    tested dimension's test rejects. ``dims`` may be an int (first N
    columns) or explicit column indices.
    """
    dims = _as_dims(dims)
    candidates = sorted(group_sizes if group_sizes is not None else config.group_sizes)
    ref_dims = {}
    for dim in dims:
        column = reference[:, dim]
        ref_dims[dim] = np.sort(column[~np.isnan(column)])

    rates: Dict[int, float] = {}
    for n in candidates:
        if len(validation) < n + 1:
            break
        rejected = 0
        positions = 0
        stride = max(1, n // 4)  # sliding with a stride keeps this cheap
        for end in range(n, len(validation) + 1, stride):
            group = validation[end - n: end]
            positions += 1
            if _group_rejects(ref_dims, group, dims, config):
                rejected += 1
        if positions:
            rates[n] = rejected / positions
    return rates


def _group_rejects(
    ref_dims: Dict[int, np.ndarray],
    group: np.ndarray,
    dims: tuple,
    config: EddieConfig,
) -> bool:
    """Whether any tested dimension's K-S test rejects for this group."""
    for dim in dims:
        ref = ref_dims[dim]
        if len(ref) == 0:
            continue
        values = group[:, dim]
        values = values[~np.isnan(values)]
        if len(values) < config.min_mon_values:
            continue
        if two_sample_reject(ref, values, config.alpha, config.statistic):
            return True
    return False
