"""Two-sample Kolmogorov-Smirnov test (Section 4.2 of the paper).

Given a reference set of m observations with ECDF R(x) and a monitored set
of n observations with ECDF M(x), the statistic is
``D = max_x |R(x) - M(x)|``. The null hypothesis (both sets drawn from the
same population) is rejected at significance alpha when
``D > c(alpha) * sqrt((m + n) / (m * n))``, where c(alpha) is the inverse
of the Kolmogorov distribution's survival function.

This is exactly the formulation in the paper; the p-value uses the same
asymptotic Kolmogorov distribution.

Numerics note: the D statistic is computed in exact integer arithmetic
(``|n * count_ref - m * count_mon|`` divided by ``m * n`` once at the end),
so the scalar path (:func:`ks_statistic`) and the vectorized batch path
(:func:`ks_statistic_batch`) produce bit-identical values -- the monitor's
batched hot path can never flip a rejection decision relative to the
per-dimension loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "KsResult",
    "ks_2samp",
    "ks_statistic",
    "ks_statistic_batch",
    "ks_d_int_rows",
    "ks_critical_value",
    "kolmogorov_sf",
    "sorted_run_ends",
]


def sorted_run_ends(sample_sorted: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """(cumulative counts, values) at the equal-value run ends of a sorted sample.

    ``counts[j]`` is how many elements are <= the j-th distinct value;
    ``values[j]`` is that value. Reference sets are fixed per region, so
    the monitor precomputes this once per dimension instead of on every
    K-S call.
    """
    k = len(sample_sorted)
    end = np.empty(k, dtype=bool)
    end[:-1] = sample_sorted[1:] != sample_sorted[:-1]
    end[-1] = True
    counts = np.flatnonzero(end) + 1
    return counts, sample_sorted[counts - 1]


@dataclass(frozen=True)
class KsResult:
    """Outcome of one two-sample K-S test."""

    statistic: float
    pvalue: float
    m: int
    n: int

    def reject(self, alpha: float = 0.01) -> bool:
        """Whether H0 (same population) is rejected at significance alpha."""
        return self.statistic > ks_critical_value(self.m, self.n, alpha)


def _ks_d_int(
    ref: np.ndarray,
    mon: np.ndarray,
    m: int,
    n: int,
    ref_runs: "tuple[np.ndarray, np.ndarray] | None" = None,
) -> int:
    """max |n*count_ref(x) - m*count_mon(x)| over all jump points.

    Both inputs must be sorted. The ECDF difference only changes at jump
    points, and within a run of tied values it is only defined once the
    whole run is consumed (side='right' semantics), so it suffices to
    evaluate at the *last* element of each equal-value run of either
    sample -- two small searchsorted calls instead of one over the merged
    arrays. ``ref_runs`` may carry the reference side's precomputed
    :func:`sorted_run_ends` (it is fixed per region). Exact integer
    arithmetic: dividing by m*n once at the end keeps the scalar and
    batch paths bit-identical.
    """
    if ref_runs is None:
        ref_runs = sorted_run_ends(ref)
    ref_counts, ref_ends = ref_runs
    mon_counts, mon_ends = sorted_run_ends(mon)
    mon_at_ref = np.searchsorted(mon, ref_ends, side="right")
    ref_at_mon = np.searchsorted(ref, mon_ends, side="right")
    d_ref = int(np.abs(n * ref_counts - m * mon_at_ref).max())
    d_mon = int(np.abs(n * ref_at_mon - m * mon_counts).max())
    return max(d_ref, d_mon)


def ks_d_int_rows(
    reference_sorted: np.ndarray, rows_sorted: np.ndarray
) -> np.ndarray:
    """Exact-integer K-S numerators for many equal-size monitored sets
    against one shared reference, with no per-pair Python.

    ``reference_sorted`` is one pre-sorted 1-D reference of m values;
    ``rows_sorted`` is ``(B, c)`` where every row is one pre-sorted
    monitored set (no NaNs). Returns the ``(B,)`` int64 array of
    ``D_int = max_x |c * count_ref(x) - m * count_mon(x)|`` per row --
    the same integer :func:`_ks_d_int` computes, so
    ``D_int / (m * c)`` is bit-identical to :func:`ks_statistic`.

    Why evaluating only at the monitored values suffices: the sup of the
    ECDF difference is attained at a jump point of either sample. At a
    monitored jump the difference (side='right') is
    ``A_t = |c * r_t - m * rc_t|`` with ``r_t`` the reference's right
    rank of the value and ``rc_t`` the row's right run-end count, and
    its left limit is ``B_t = |c * l_t - m * lc_t]`` with the
    corresponding left ranks/counts. Between two consecutive monitored
    values the monitored count is constant, so over that gap
    ``|c * R - m * C|`` is piecewise linear in the reference count R and
    maximized at the gap's endpoints -- which are exactly the ``A``/``B``
    values above. Every reference-side run end is therefore dominated by
    a monitored-side endpoint, and the per-pair reference scan of
    :func:`_ks_d_int` is unnecessary. (Fuzz-verified against
    ``_ks_d_int`` over tie-heavy inputs in tests/test_fleet_kernel.py.)
    """
    ref = np.asarray(reference_sorted, dtype=float)
    rows = np.asarray(rows_sorted, dtype=float)
    if rows.ndim != 2:
        raise ConfigurationError(
            f"rows_sorted must be 2-D, got shape {rows.shape}"
        )
    b, c = rows.shape
    m = len(ref)
    if b == 0:
        return np.empty(0, dtype=np.int64)
    if m == 0 or c == 0:
        raise ConfigurationError("K-S test requires non-empty samples")
    right = np.searchsorted(ref, rows.ravel(), side="right").reshape(b, c)
    left = np.searchsorted(ref, rows.ravel(), side="left").reshape(b, c)
    idx1 = np.arange(1, c + 1, dtype=np.int64)
    idx0 = np.arange(c, dtype=np.int64)
    if c > 1:
        neq = rows[:, 1:] != rows[:, :-1]
        run_end = np.concatenate([neq, np.ones((b, 1), dtype=bool)], axis=1)
        run_start = np.concatenate([np.ones((b, 1), dtype=bool), neq], axis=1)
    else:
        run_end = np.ones((b, 1), dtype=bool)
        run_start = run_end
    # Right count of each value's run: backward-min of the run-end ranks.
    rc = np.where(run_end, idx1, np.int64(c + 1))
    rc = np.minimum.accumulate(rc[:, ::-1], axis=1)[:, ::-1]
    # Left count (values strictly below): forward-max of run-start indices.
    lc = np.where(run_start, idx0, np.int64(-1))
    lc = np.maximum.accumulate(lc, axis=1)
    d_right = np.abs(c * right - m * rc)
    d_left = np.abs(c * left - m * lc)
    return np.maximum(d_right, d_left).max(axis=1).astype(np.int64)


def ks_statistic(
    reference_sorted: np.ndarray,
    monitored: np.ndarray,
    ref_runs: "tuple[np.ndarray, np.ndarray] | None" = None,
) -> float:
    """The K-S D statistic; ``reference_sorted`` must be pre-sorted.

    This is the hot path of EDDIE's monitor, so it avoids re-sorting the
    reference set on every call. ``monitored`` may arrive in any order
    (sorting an already-sorted monitored group is cheap). ``ref_runs``
    may carry the reference's precomputed :func:`sorted_run_ends`.
    """
    reference_sorted = np.asarray(reference_sorted, dtype=float)
    mon_sorted = np.sort(np.asarray(monitored, dtype=float))
    m, n = len(reference_sorted), len(mon_sorted)
    if m == 0 or n == 0:
        raise ConfigurationError("K-S test requires non-empty samples")
    return _ks_d_int(reference_sorted, mon_sorted, m, n, ref_runs) / (m * n)


def ks_statistic_batch(
    references_sorted: Sequence[np.ndarray],
    monitored_sorted: Sequence[np.ndarray],
    reference_runs: "Sequence[tuple[np.ndarray, np.ndarray]] | None" = None,
) -> np.ndarray:
    """K-S D statistics for many (reference, monitored) pairs in one call.

    Both inputs are sequences of 1-D **pre-sorted** arrays; pair ``i`` is
    ``(references_sorted[i], monitored_sorted[i])``. This is the monitor's
    hot path: all tested dimensions of one window are scored in a single
    call, each through the run-ends kernel that exploits both sides being
    pre-sorted (the references once per profile, the monitored groups by
    the monitor's incrementally sorted history). ``reference_runs``, when
    given, carries each reference's precomputed :func:`sorted_run_ends`
    so the fixed side of every pair is never re-analyzed.

    Returns an array of D values, bit-identical to calling
    :func:`ks_statistic` pair by pair.
    """
    if len(references_sorted) != len(monitored_sorted):
        raise ConfigurationError(
            f"{len(references_sorted)} reference sets for "
            f"{len(monitored_sorted)} monitored sets"
        )
    out = np.empty(len(references_sorted), dtype=float)
    for i, (ref, mon) in enumerate(zip(references_sorted, monitored_sorted)):
        m, n = len(ref), len(mon)
        if m == 0 or n == 0:
            raise ConfigurationError("K-S test requires non-empty samples")
        runs = reference_runs[i] if reference_runs is not None else None
        out[i] = _ks_d_int(ref, mon, m, n, runs) / (m * n)
    return out


def ks_2samp(reference: np.ndarray, monitored: np.ndarray) -> KsResult:
    """Two-sample K-S test with the asymptotic Kolmogorov p-value."""
    ref_sorted = np.sort(np.asarray(reference, dtype=float))
    statistic = ks_statistic(ref_sorted, monitored)
    m, n = len(ref_sorted), len(monitored)
    effective = np.sqrt(m * n / (m + n))
    pvalue = float(kolmogorov_sf(statistic * effective))
    return KsResult(statistic=statistic, pvalue=pvalue, m=m, n=n)


def kolmogorov_sf(x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Survival function of the Kolmogorov distribution.

    Q(x) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 x^2); Q(0) = 1.

    Accepts a scalar or an array; the alternating series is evaluated as
    one vectorized cumulative sum over the first 100 terms (terms beyond
    the old scalar loop's 1e-16 early-exit underflow to zero and change
    nothing).
    """
    arr = np.asarray(x, dtype=float)
    scalar = arr.ndim == 0
    xs = np.atleast_1d(arr)
    out = np.ones_like(xs)
    # Q(0.18) differs from 1 by ~1e-30, but the alternating series
    # converges slowly there; return the limit directly.
    big = xs > 0.18
    if big.any():
        xb = xs[big]
        k = np.arange(1, 101, dtype=float)
        signs = np.where(np.arange(100) % 2 == 0, 1.0, -1.0)
        with np.errstate(under="ignore"):
            terms = signs * np.exp(-2.0 * np.outer(xb * xb, k * k))
        totals = 2.0 * np.cumsum(terms, axis=1)[:, -1]
        out[big] = np.clip(totals, 0.0, 1.0)
    if scalar:
        return float(out[0])
    return out


@lru_cache(maxsize=1024)
def _kolmogorov_isf(alpha: float) -> float:
    """c(alpha): the x with Q(x) = alpha, by bisection."""
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    lo, hi = 1e-6, 5.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if kolmogorov_sf(mid) > alpha:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@lru_cache(maxsize=8192)
def ks_critical_value(m: int, n: int, alpha: float = 0.01) -> float:
    """D_{m,n,alpha} = c(alpha) * sqrt((m + n) / (m * n)) (paper, Sec. 4.2).

    Cached: the monitor evaluates the same (m, n, alpha) triples on every
    STS, so the square root and the bisection behind c(alpha) are paid
    once.
    """
    if m <= 0 or n <= 0:
        raise ConfigurationError("sample sizes must be positive")
    return _kolmogorov_isf(alpha) * np.sqrt((m + n) / (m * n))
