"""Two-sample Kolmogorov-Smirnov test (Section 4.2 of the paper).

Given a reference set of m observations with ECDF R(x) and a monitored set
of n observations with ECDF M(x), the statistic is
``D = max_x |R(x) - M(x)|``. The null hypothesis (both sets drawn from the
same population) is rejected at significance alpha when
``D > c(alpha) * sqrt((m + n) / (m * n))``, where c(alpha) is the inverse
of the Kolmogorov distribution's survival function.

This is exactly the formulation in the paper; the p-value uses the same
asymptotic Kolmogorov distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["KsResult", "ks_2samp", "ks_statistic", "ks_critical_value", "kolmogorov_sf"]


@dataclass(frozen=True)
class KsResult:
    """Outcome of one two-sample K-S test."""

    statistic: float
    pvalue: float
    m: int
    n: int

    def reject(self, alpha: float = 0.01) -> bool:
        """Whether H0 (same population) is rejected at significance alpha."""
        return self.statistic > ks_critical_value(self.m, self.n, alpha)


def ks_statistic(reference_sorted: np.ndarray, monitored: np.ndarray) -> float:
    """The K-S D statistic; ``reference_sorted`` must be pre-sorted.

    This is the hot path of EDDIE's monitor, so it avoids re-sorting the
    reference set on every call.
    """
    mon_sorted = np.sort(np.asarray(monitored, dtype=float))
    m, n = len(reference_sorted), len(mon_sorted)
    if m == 0 or n == 0:
        raise ConfigurationError("K-S test requires non-empty samples")
    # Evaluate both ECDFs at every jump point of either sample.
    points = np.concatenate([reference_sorted, mon_sorted])
    cdf_ref = np.searchsorted(reference_sorted, points, side="right") / m
    cdf_mon = np.searchsorted(mon_sorted, points, side="right") / n
    return float(np.abs(cdf_ref - cdf_mon).max())


def ks_2samp(reference: np.ndarray, monitored: np.ndarray) -> KsResult:
    """Two-sample K-S test with the asymptotic Kolmogorov p-value."""
    ref_sorted = np.sort(np.asarray(reference, dtype=float))
    statistic = ks_statistic(ref_sorted, monitored)
    m, n = len(ref_sorted), len(monitored)
    effective = np.sqrt(m * n / (m + n))
    pvalue = kolmogorov_sf(statistic * effective)
    return KsResult(statistic=statistic, pvalue=pvalue, m=m, n=n)


def kolmogorov_sf(x: float) -> float:
    """Survival function of the Kolmogorov distribution.

    Q(x) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 x^2); Q(0) = 1.
    """
    if x <= 0.18:
        # Q(0.18) differs from 1 by ~1e-30, but the alternating series
        # converges slowly there; return the limit directly.
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1) ** (k - 1) * np.exp(-2.0 * k * k * x * x)
        total += term
        if abs(term) < 1e-16:
            break
    return float(min(1.0, max(0.0, 2.0 * total)))


@lru_cache(maxsize=1024)
def _kolmogorov_isf(alpha: float) -> float:
    """c(alpha): the x with Q(x) = alpha, by bisection."""
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    lo, hi = 1e-6, 5.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if kolmogorov_sf(mid) > alpha:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def ks_critical_value(m: int, n: int, alpha: float = 0.01) -> float:
    """D_{m,n,alpha} = c(alpha) * sqrt((m + n) / (m * n)) (paper, Sec. 4.2)."""
    if m <= 0 or n <= 0:
        raise ConfigurationError("sample sizes must be positive")
    return _kolmogorov_isf(alpha) * np.sqrt((m + n) / (m * n))
