"""A small 1-D Gaussian mixture model fitted with EM.

Used by the Figure-2 reproduction: the paper fits a bi-normal (two
Gaussian components) distribution to the strongest-peak frequencies of one
Susan loop nest and shows the fit differs enough from the empirical
distribution that a parametric test would produce unavoidable false
positives and false negatives -- the motivation for EDDIE's nonparametric
K-S test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.stats import norm

from repro.errors import ConfigurationError

__all__ = ["GaussianMixture1D", "fit_gmm"]


@dataclass(frozen=True)
class GaussianMixture1D:
    """A fitted 1-D Gaussian mixture."""

    weights: Tuple[float, ...]
    means: Tuple[float, ...]
    stds: Tuple[float, ...]
    log_likelihood: float

    @property
    def n_components(self) -> int:
        return len(self.weights)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        total = np.zeros_like(x)
        for w, mu, sd in zip(self.weights, self.means, self.stds):
            total += w * norm.pdf(x, mu, sd)
        return total

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        total = np.zeros_like(x)
        for w, mu, sd in zip(self.weights, self.means, self.stds):
            total += w * norm.cdf(x, mu, sd)
        return total

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        component = rng.choice(self.n_components, size=n, p=self.weights)
        means = np.asarray(self.means)[component]
        stds = np.asarray(self.stds)[component]
        return rng.normal(means, stds)

    def within_k_sigma(self, x: np.ndarray, k: float = 3.0) -> np.ndarray:
        """Whether each x lies within k sigma of ANY component.

        This is the acceptance region of the naive parametric test in the
        paper's Figure 2 (the +-3 sigma band of the fitted distribution).
        """
        x = np.asarray(x, dtype=float)
        accept = np.zeros(len(x), dtype=bool)
        for mu, sd in zip(self.means, self.stds):
            accept |= np.abs(x - mu) <= k * sd
        return accept


def fit_gmm(
    data: np.ndarray,
    n_components: int = 2,
    max_iter: int = 200,
    tol: float = 1e-8,
    seed: int = 0,
) -> GaussianMixture1D:
    """Fit a 1-D Gaussian mixture by expectation-maximization."""
    x = np.asarray(data, dtype=float)
    x = x[~np.isnan(x)]
    if len(x) < 2 * n_components:
        raise ConfigurationError(
            f"need at least {2 * n_components} points to fit {n_components} "
            f"components, got {len(x)}"
        )
    rng = np.random.default_rng(seed)

    # Initialize from quantiles (robust for well-separated modes).
    quantiles = np.linspace(0, 1, n_components + 2)[1:-1]
    means = np.quantile(x, quantiles)
    spread = max(x.std() / n_components, 1e-12)
    stds = np.full(n_components, spread)
    weights = np.full(n_components, 1.0 / n_components)

    log_likelihood = -np.inf
    for _ in range(max_iter):
        # E step: responsibilities.
        densities = np.stack(
            [w * norm.pdf(x, mu, max(sd, 1e-12))
             for w, mu, sd in zip(weights, means, stds)]
        )
        totals = densities.sum(axis=0)
        totals = np.maximum(totals, 1e-300)
        resp = densities / totals

        new_ll = float(np.log(totals).sum())

        # M step.
        counts = resp.sum(axis=1)
        counts = np.maximum(counts, 1e-12)
        weights = counts / len(x)
        means = (resp @ x) / counts
        variances = (resp @ (x**2)) / counts - means**2
        stds = np.sqrt(np.maximum(variances, 1e-18))

        if abs(new_ll - log_likelihood) < tol * (abs(log_likelihood) + 1):
            log_likelihood = new_ll
            break
        log_likelihood = new_ll

    order = np.argsort(means)
    return GaussianMixture1D(
        weights=tuple(float(w) for w in weights[order]),
        means=tuple(float(m) for m in means[order]),
        stds=tuple(float(s) for s in stds[order]),
        log_likelihood=log_likelihood,
    )
