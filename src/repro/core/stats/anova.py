"""N-way fixed-effects ANOVA (main effects), for the Section 5.3 study.

The paper simulates 51 core configurations and uses N-way analysis of
variance to decide which architectural parameters (kind, issue width,
pipeline depth, ROB size) significantly affect EDDIE's detection latency.
This module implements a main-effects ANOVA: each factor's sum of squares
is computed from its level means, the residual absorbs everything else,
and each factor gets an F statistic and p-value.

For unbalanced designs this is a Type-I-style decomposition with the
factors treated independently (no interactions), which is the standard
reading of the paper's use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np
from scipy.stats import f as f_dist

from repro.errors import ConfigurationError

__all__ = ["FactorEffect", "AnovaResult", "n_way_anova"]


@dataclass(frozen=True)
class FactorEffect:
    """One factor's row of the ANOVA table."""

    name: str
    ss: float
    df: int
    f_stat: float
    pvalue: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.pvalue < alpha


@dataclass(frozen=True)
class AnovaResult:
    """Full main-effects ANOVA table."""

    effects: Dict[str, FactorEffect]
    ss_residual: float
    df_residual: int
    ss_total: float

    def significant_factors(self, alpha: float = 0.05) -> Sequence[str]:
        return [name for name, eff in self.effects.items() if eff.significant(alpha)]


def n_way_anova(
    factors: Mapping[str, Sequence], response: Sequence[float]
) -> AnovaResult:
    """Main-effects N-way ANOVA of ``response`` against ``factors``.

    Args:
        factors: mapping from factor name to a sequence of level labels,
            one per observation.
        response: the measured values.
    """
    y = np.asarray(response, dtype=float)
    n_obs = len(y)
    if n_obs < 3:
        raise ConfigurationError("ANOVA needs at least 3 observations")
    if not factors:
        raise ConfigurationError("ANOVA needs at least one factor")

    grand_mean = y.mean()
    ss_total = float(((y - grand_mean) ** 2).sum())

    factor_ss: Dict[str, float] = {}
    factor_df: Dict[str, int] = {}
    for name, labels in factors.items():
        labels = np.asarray(labels)
        if len(labels) != n_obs:
            raise ConfigurationError(
                f"factor {name!r} has {len(labels)} labels for {n_obs} observations"
            )
        levels = np.unique(labels)
        if len(levels) < 2:
            # A constant factor explains nothing; keep it with zero df so
            # callers see it in the table.
            factor_ss[name] = 0.0
            factor_df[name] = 0
            continue
        ss = 0.0
        for level in levels:
            group = y[labels == level]
            ss += len(group) * (group.mean() - grand_mean) ** 2
        factor_ss[name] = float(ss)
        factor_df[name] = len(levels) - 1

    df_model = sum(factor_df.values())
    df_residual = n_obs - 1 - df_model
    if df_residual <= 0:
        raise ConfigurationError(
            f"not enough residual degrees of freedom "
            f"({n_obs} observations, model df {df_model})"
        )
    ss_residual = max(0.0, ss_total - sum(factor_ss.values()))
    ms_residual = ss_residual / df_residual

    effects: Dict[str, FactorEffect] = {}
    for name in factors:
        df = factor_df[name]
        if df == 0 or ms_residual == 0:
            effects[name] = FactorEffect(name, factor_ss[name], df, 0.0, 1.0)
            continue
        ms = factor_ss[name] / df
        f_stat = ms / ms_residual
        pvalue = float(f_dist.sf(f_stat, df, df_residual))
        effects[name] = FactorEffect(name, factor_ss[name], df, f_stat, pvalue)

    return AnovaResult(
        effects=effects,
        ss_residual=ss_residual,
        df_residual=df_residual,
        ss_total=ss_total,
    )
