"""Wilcoxon-Mann-Whitney U test (normal approximation with tie correction).

The paper compares the U-test with the K-S test and finds K-S performs
better for EDDIE (the U-test only senses median shifts, while injected
execution often changes the *shape* of the peak-frequency distribution).
Both are provided so the comparison can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.errors import ConfigurationError

__all__ = ["UTestResult", "mann_whitney_u"]


@dataclass(frozen=True)
class UTestResult:
    """Outcome of one two-sided Mann-Whitney U test."""

    statistic: float  # U of the first sample
    pvalue: float
    m: int
    n: int

    def reject(self, alpha: float = 0.01) -> bool:
        return self.pvalue < alpha


def mann_whitney_u(x: np.ndarray, y: np.ndarray) -> UTestResult:
    """Two-sided Mann-Whitney U test via the normal approximation.

    Uses midranks for ties and the standard tie-corrected variance. The
    approximation is accurate for the sample sizes EDDIE uses (tens to
    hundreds per group).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    m, n = len(x), len(y)
    if m == 0 or n == 0:
        raise ConfigurationError("U test requires non-empty samples")

    combined = np.concatenate([x, y])
    ranks = _midranks(combined)
    rank_sum_x = ranks[:m].sum()
    u_x = rank_sum_x - m * (m + 1) / 2.0

    mean_u = m * n / 2.0
    total = m + n
    _, counts = np.unique(combined, return_counts=True)
    tie_term = np.sum(counts**3 - counts)
    var_u = m * n / 12.0 * ((total + 1) - tie_term / (total * (total - 1)))
    if var_u <= 0:
        # All values identical: no evidence of difference.
        return UTestResult(statistic=float(u_x), pvalue=1.0, m=m, n=n)

    z = (u_x - mean_u - 0.5 * np.sign(u_x - mean_u)) / np.sqrt(var_u)
    pvalue = float(2.0 * norm.sf(abs(z)))
    return UTestResult(statistic=float(u_x), pvalue=min(1.0, pvalue), m=m, n=n)


def _midranks(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties assigned their average rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values))
    sorted_vals = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i: j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks
