"""Statistical tests used by EDDIE (own implementations, scipy-validated).

The paper's detector is built on the two-sample Kolmogorov-Smirnov test
(:mod:`repro.core.stats.ks`); the Wilcoxon-Mann-Whitney U test
(:mod:`repro.core.stats.utest`) is implemented as well because the authors
compared both and chose K-S. The N-way ANOVA of the Section 5.3
architecture-sensitivity study lives in :mod:`repro.core.stats.anova`.
"""

import numpy as np

from repro.core.stats.anova import AnovaResult, n_way_anova
from repro.core.stats.empirical import ecdf
from repro.core.stats.ks import (
    KsResult,
    kolmogorov_sf,
    ks_2samp,
    ks_critical_value,
    ks_d_int_rows,
    ks_statistic,
    ks_statistic_batch,
    sorted_run_ends,
)
from repro.core.stats.utest import UTestResult, mann_whitney_u
from repro.errors import ConfigurationError

__all__ = [
    "ks_2samp",
    "ks_critical_value",
    "ks_d_int_rows",
    "ks_statistic_batch",
    "kolmogorov_sf",
    "KsResult",
    "mann_whitney_u",
    "UTestResult",
    "n_way_anova",
    "AnovaResult",
    "ecdf",
    "sorted_run_ends",
    "two_sample_reject",
]


def two_sample_reject(
    reference_sorted: np.ndarray,
    monitored: np.ndarray,
    alpha: float,
    method: str = "ks",
    ref_runs=None,
) -> bool:
    """Whether a two-sample test rejects H0 (same population).

    ``method`` selects the paper's two candidates: ``'ks'`` (the
    Kolmogorov-Smirnov test EDDIE settled on) or ``'utest'`` (the
    Wilcoxon-Mann-Whitney test it was compared against). The reference
    sample must be pre-sorted (the monitor's hot path); ``ref_runs`` may
    carry its precomputed :func:`~repro.core.stats.ks.sorted_run_ends`
    (only used by the K-S method).
    """
    if method == "ks":
        d_stat = ks_statistic(reference_sorted, monitored, ref_runs)
        return d_stat > ks_critical_value(
            len(reference_sorted), len(monitored), alpha
        )
    if method == "utest":
        return mann_whitney_u(reference_sorted, monitored).reject(alpha)
    raise ConfigurationError(f"unknown statistical test {method!r}")
