"""Empirical distribution utilities."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ecdf", "ecdf_values"]


def ecdf(data: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """Return the empirical CDF of ``data`` as a callable.

    The returned function evaluates F(x) = (number of samples <= x) / n.
    """
    sorted_data = np.sort(np.asarray(data, dtype=float))
    n = len(sorted_data)
    if n == 0:
        raise ConfigurationError("cannot build an ECDF from an empty sample")

    def evaluate(x: np.ndarray) -> np.ndarray:
        return np.searchsorted(sorted_data, np.asarray(x), side="right") / n

    return evaluate


def ecdf_values(
    sorted_sample: np.ndarray, at: np.ndarray
) -> np.ndarray:
    """Evaluate the ECDF of an already-sorted sample at the given points."""
    return np.searchsorted(sorted_sample, at, side="right") / len(sorted_sample)
