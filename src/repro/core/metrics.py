"""Scoring of monitoring runs by the paper's Section 5.2 definitions.

- *Detection latency*: among reported injections, the mean time from the
  start of injected execution to EDDIE's report.
- *False positives*: STS groups reported anomalous that contain no injected
  execution, as a percentage of all STS groups.
- *Accuracy*: per region, the share of STS groups with a correct outcome
  (injection-containing and reported, or clean and unreported); a
  benchmark's accuracy is the mean of its per-region accuracies.
- *Coverage*: share of time the monitor attributes the STS to the region
  that actually produced it.
- *False-negative rate* (Figure 5): injection-containing STS groups that
  are not reported, as a share of injection-containing groups.
- *True-positive rate* (Figures 6, 8, 10): the complement, reported
  injection-containing groups over injection-containing groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.monitor import MonitorResult
from repro.types import FaultSpan, RegionTimeline

__all__ = [
    "RunMetrics",
    "evaluate_run",
    "aggregate_metrics",
    "injected_group_mask",
    "fault_group_mask",
    "rejection_false_negative_rate",
]


@dataclass
class RunMetrics:
    """Metrics of one monitored run.

    The fault-aware fields score acquisition-fault-overlapping windows
    separately (see repro.em.faults): ``false_positive_rate`` keeps its
    original all-groups definition, while ``false_positive_rate_unfaulted``
    restricts both numerator and denominator to groups untouched by any
    fault and ``false_positive_rate_faulted`` to groups a fault touched --
    the quantity that shows whether the front end's hiccups, rather than
    the program, produced the reports.
    """

    detection_latency: Optional[float]
    false_positive_rate: float
    false_negative_rate: Optional[float]
    true_positive_rate: Optional[float]
    accuracy: float
    coverage: float
    per_region_accuracy: Dict[str, float] = field(default_factory=dict)
    n_groups: int = 0
    n_injected_groups: int = 0
    n_reports: int = 0
    detected: bool = False
    false_positive_rate_unfaulted: Optional[float] = None
    false_positive_rate_faulted: Optional[float] = None
    n_faulted_groups: int = 0
    n_unscorable: int = 0
    n_desyncs: int = 0
    status: str = "ok"


def evaluate_run(
    result: MonitorResult,
    timeline: RegionTimeline,
    injected_spans: Sequence[Tuple[float, float]],
    window_duration: float,
    hop_duration: float,
    report_linger: float = 0.0,
    fault_spans: Sequence = (),
) -> RunMetrics:
    """Score one monitoring pass against ground truth.

    Each STS index i corresponds to a *group*: the ``group_sizes[i]`` most
    recent STSs the K-S test considered at that point. A group "contains
    injection" when its time span overlaps an injected span.

    ``report_linger`` extends the credit window after an injection ends:
    a report fired within that many seconds after an injected group still
    counts as a true positive (the K-S group keeps containing injected
    STSs for up to n hops after the injection stops).

    ``fault_spans`` is the acquisition-fault ground truth (a sequence of
    :class:`~repro.types.FaultSpan` or ``(t_start, t_end)`` pairs); when
    given, false positives are additionally scored separately for
    fault-overlapping and fault-free groups.
    """
    times = result.times
    n = len(times)
    if n == 0:
        return RunMetrics(
            detection_latency=None,
            false_positive_rate=0.0,
            false_negative_rate=None,
            true_positive_rate=None,
            accuracy=1.0,
            coverage=0.0,
            status=result.status,
        )

    group_start = (
        times - result.group_sizes * hop_duration - window_duration / 2.0
    )
    group_end = times + window_duration / 2.0
    contains = np.zeros(n, dtype=bool)
    for span_start, span_end in injected_spans:
        contains |= (group_start < span_end) & (span_start < group_end)

    faulted = np.zeros(n, dtype=bool)
    for span in fault_spans:
        s, e = _span_bounds(span)
        faulted |= (group_start < e) & (s < group_end)

    reported = result.reported_mask

    clean = ~contains
    n_false_pos = int((reported & clean).sum())
    false_positive_rate = 100.0 * n_false_pos / n

    fp_unfaulted: Optional[float] = None
    fp_faulted: Optional[float] = None
    if fault_spans:
        unfaulted = ~faulted
        if unfaulted.any():
            fp_unfaulted = (
                100.0 * int((reported & clean & unfaulted).sum())
                / int(unfaulted.sum())
            )
        if faulted.any():
            fp_faulted = (
                100.0 * int((reported & clean & faulted).sum())
                / int(faulted.sum())
            )

    n_injected = int(contains.sum())
    if n_injected:
        # A report anywhere in the injected stretch (or just after it)
        # covers the whole streak the anomaly counter was building over.
        tp_groups = _credited_groups(times, contains, reported, report_linger)
        true_positive_rate = 100.0 * tp_groups / n_injected
        false_negative_rate = 100.0 - true_positive_rate
    else:
        true_positive_rate = None
        false_negative_rate = None

    # Detection latency: first report at/after each injected span's start.
    latencies: List[float] = []
    report_times = np.array([r.time for r in result.reports])
    for span_start, span_end in injected_spans:
        if len(report_times) == 0:
            continue
        eligible = report_times[
            (report_times >= span_start)
            & (report_times <= span_end + report_linger + window_duration)
        ]
        if len(eligible):
            latencies.append(float(eligible.min() - span_start))
    detection_latency = float(np.mean(latencies)) if latencies else None

    # Per-region accuracy over ground-truth window attribution.
    truth = [
        timeline.dominant_region(t - window_duration / 2.0, t + window_duration / 2.0)
        for t in times
    ]
    correct = reported == contains  # both bool arrays
    if len(report_times):
        # Reports are sparse single firings covering a streak: treat an
        # injected group as correctly handled if ANY report credited it.
        credited = _credit_mask(times, contains, reported, report_linger)
        correct = np.where(contains, credited, ~reported)

    per_region: Dict[str, float] = {}
    for region in {r for r in truth if r is not None}:
        mask = np.array([r == region for r in truth])
        if mask.any():
            per_region[region] = 100.0 * float(correct[mask].mean())
    accuracy = float(np.mean(list(per_region.values()))) if per_region else 100.0

    tracked = np.array(result.tracked)
    truth_arr = np.array([r if r is not None else "<none>" for r in truth])
    valid = truth_arr != "<none>"
    coverage = (
        100.0 * float((tracked[valid] == truth_arr[valid]).mean())
        if valid.any()
        else 0.0
    )

    n_unscorable = (
        int(result.unscorable_flags.sum())
        if result.unscorable_flags is not None
        else 0
    )
    n_desyncs = sum(
        1 for r in result.reports if getattr(r, "kind", "anomaly") == "desync"
    )

    return RunMetrics(
        detection_latency=detection_latency,
        false_positive_rate=false_positive_rate,
        false_negative_rate=false_negative_rate,
        true_positive_rate=true_positive_rate,
        accuracy=accuracy,
        coverage=coverage,
        per_region_accuracy=per_region,
        n_groups=n,
        n_injected_groups=n_injected,
        n_reports=len(result.reports),
        detected=bool(latencies),
        false_positive_rate_unfaulted=fp_unfaulted,
        false_positive_rate_faulted=fp_faulted,
        n_faulted_groups=int(faulted.sum()),
        n_unscorable=n_unscorable,
        n_desyncs=n_desyncs,
        status=result.status,
    )


def _span_bounds(span) -> Tuple[float, float]:
    """Bounds of a fault span given as a FaultSpan or a (start, end) pair."""
    if isinstance(span, FaultSpan):
        return span.t_start, span.t_end
    start, end = span
    return float(start), float(end)


def fault_group_mask(
    result: MonitorResult,
    fault_spans: Sequence,
    window_duration: float,
    hop_duration: float,
) -> np.ndarray:
    """Boolean per-STS mask: does the group at each index overlap a fault?"""
    times = result.times
    group_start = (
        times - result.group_sizes * hop_duration - window_duration / 2.0
    )
    group_end = times + window_duration / 2.0
    faulted = np.zeros(len(times), dtype=bool)
    for span in fault_spans:
        s, e = _span_bounds(span)
        faulted |= (group_start < e) & (s < group_end)
    return faulted


def injected_group_mask(
    result: MonitorResult,
    injected_spans: Sequence[Tuple[float, float]],
    window_duration: float,
    hop_duration: float,
) -> np.ndarray:
    """Boolean per-STS mask: does the group at each index contain injection?"""
    times = result.times
    group_start = (
        times - result.group_sizes * hop_duration - window_duration / 2.0
    )
    group_end = times + window_duration / 2.0
    contains = np.zeros(len(times), dtype=bool)
    for span_start, span_end in injected_spans:
        contains |= (group_start < span_end) & (span_start < group_end)
    return contains


def rejection_false_negative_rate(
    result: MonitorResult,
    injected_spans: Sequence[Tuple[float, float]],
    window_duration: float,
    hop_duration: float,
) -> Optional[float]:
    """Test-level FN: % of injection-containing groups the K-S test accepted.

    This is the quantity in the paper's Figure 5 ("the percentage of
    injection-containing STSs that are not reported"): graded per group,
    unlike report events which are sparse by design (reportThreshold).
    """
    contains = injected_group_mask(
        result, injected_spans, window_duration, hop_duration
    )
    n_injected = int(contains.sum())
    if n_injected == 0:
        return None
    missed = int((~result.rejection_flags[contains]).sum())
    return 100.0 * missed / n_injected


def _credit_mask(
    times: np.ndarray,
    contains: np.ndarray,
    reported: np.ndarray,
    linger: float,
) -> np.ndarray:
    """Per-group credit: injected groups covered by a report in their stretch.

    Contiguous runs of injection-containing groups form stretches; every
    group in a stretch is credited if any report fires within the stretch
    (or within ``linger`` seconds after it).
    """
    credit = np.zeros(len(times), dtype=bool)
    report_times = times[reported]
    i = 0
    n = len(times)
    while i < n:
        if not contains[i]:
            i += 1
            continue
        j = i
        while j + 1 < n and contains[j + 1]:
            j += 1
        start, end = times[i], times[j] + linger
        if len(report_times) and np.any(
            (report_times >= start) & (report_times <= end)
        ):
            credit[i: j + 1] = True
        i = j + 1
    return credit


def _credited_groups(
    times: np.ndarray,
    contains: np.ndarray,
    reported: np.ndarray,
    linger: float,
) -> int:
    return int(_credit_mask(times, contains, reported, linger)[contains].sum())


def aggregate_metrics(metrics: Sequence[RunMetrics]) -> RunMetrics:
    """Average a set of run metrics (for multi-run experiments)."""
    if not metrics:
        raise ValueError("no metrics to aggregate")

    def mean_of(values: List[Optional[float]]) -> Optional[float]:
        present = [v for v in values if v is not None]
        return float(np.mean(present)) if present else None

    per_region: Dict[str, List[float]] = {}
    for m in metrics:
        for region, acc in m.per_region_accuracy.items():
            per_region.setdefault(region, []).append(acc)

    return RunMetrics(
        detection_latency=mean_of([m.detection_latency for m in metrics]),
        false_positive_rate=float(
            np.mean([m.false_positive_rate for m in metrics])
        ),
        false_negative_rate=mean_of([m.false_negative_rate for m in metrics]),
        true_positive_rate=mean_of([m.true_positive_rate for m in metrics]),
        accuracy=float(np.mean([m.accuracy for m in metrics])),
        coverage=float(np.mean([m.coverage for m in metrics])),
        per_region_accuracy={
            region: float(np.mean(vals)) for region, vals in per_region.items()
        },
        n_groups=sum(m.n_groups for m in metrics),
        n_injected_groups=sum(m.n_injected_groups for m in metrics),
        n_reports=sum(m.n_reports for m in metrics),
        detected=any(m.detected for m in metrics),
        false_positive_rate_unfaulted=mean_of(
            [m.false_positive_rate_unfaulted for m in metrics]
        ),
        false_positive_rate_faulted=mean_of(
            [m.false_positive_rate_faulted for m in metrics]
        ),
        n_faulted_groups=sum(m.n_faulted_groups for m in metrics),
        n_unscorable=sum(m.n_unscorable for m in metrics),
        n_desyncs=sum(m.n_desyncs for m in metrics),
        status=(
            "degraded"
            if any(m.status == "degraded" for m in metrics)
            else "ok"
        ),
    )
