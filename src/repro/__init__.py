"""Reproduction of EDDIE: EM-Based Detection of Deviations in Program Execution.

EDDIE (Nazari et al., ISCA 2017) detects code injections by monitoring the
electromagnetic emanations of a device: loops produce spectral peaks at their
per-iteration frequency, and deviations of the observed peak distributions
from per-region training references (via a two-sample Kolmogorov-Smirnov
test) indicate anomalous execution.

This package implements the full stack needed to reproduce the paper on a
laptop, with no SDR hardware:

- :mod:`repro.programs` -- a mini program IR plus MiBench-like workloads.
- :mod:`repro.cfg` -- CFG / dominator / loop analysis and the region-level
  state machine the paper derives with an LLVM pass.
- :mod:`repro.arch` -- a SESC-like timing simulator with a WATTCH-style
  power model producing sampled power traces.
- :mod:`repro.em` -- the EM emanation channel (AM-modulated clock carrier,
  noise, receiver front end).
- :mod:`repro.injection` -- the paper's attack models (loop-body and burst
  code injection).
- :mod:`repro.core` -- EDDIE itself: STFT, spectral peak extraction,
  nonparametric statistics, training, and the monitoring algorithm.
- :mod:`repro.experiments` -- one harness per table/figure of the paper.

The most convenient entry point is :class:`repro.Eddie`::

    from repro import Eddie
    from repro.programs.mibench import bitcount

    eddie = Eddie()
    detector = eddie.train(bitcount(), runs=10, seed=0)
    report = detector.monitor(seed=99)

For online serving, :class:`repro.StreamingMonitor` scores IQ chunks as
they arrive and :class:`repro.FleetScheduler` multiplexes many device
sessions in one process (see :mod:`repro.stream`). :mod:`repro.serve`
turns that into a networked service: publish trained models to a
:class:`repro.ModelRegistry`, run an :class:`repro.EddieServer`, and
stream captures from devices with :class:`repro.EddieClient`.

For noisy environments, :mod:`repro.dsp` provides composable
preprocessing stages -- :class:`repro.FirGateStage`,
:class:`repro.SvdDenoiser`, :class:`repro.AgcStage` -- attached via
``EddieConfig(frontend=(...,))`` and applied identically on the batch,
streaming, and serving paths (DESIGN.md D22).

For fleet scale, :mod:`repro.transfer` adapts a trained model to a
perturbed device variant from one short unlabeled capture -- no
retraining: describe the target with :class:`repro.DeviceVariant`, call
:func:`repro.calibrate_model`, and publish the result as a registry
derivation (``name@N+cal:FP``) via
:meth:`repro.ModelRegistry.publish_derived` (DESIGN.md D23).
"""

from repro.errors import (
    AnalysisError,
    ConfigurationError,
    MonitoringError,
    ProtocolError,
    RegistryError,
    ReproError,
    ServeError,
    ServeTimeoutError,
    SignalError,
    SimulationError,
    TrainingError,
)

__version__ = "1.0.0"

# The stable public surface. Classes are imported lazily (PEP 562) so
# that `import repro` stays cheap and subpackages never cycle through
# the facade. tests/test_public_api.py locks this surface against
# tests/data/public_api.txt.
_LAZY_EXPORTS = {
    "Eddie": "repro.core.detector",
    "TrainedDetector": "repro.core.detector",
    "MonitorReport": "repro.core.detector",
    "EddieConfig": "repro.core.model",
    "Monitor": "repro.core.monitor",
    "MonitorResult": "repro.core.monitor",
    "AnomalyReport": "repro.core.monitor",
    "StreamingMonitor": "repro.stream",
    "StreamSummary": "repro.stream",
    "StreamSnapshot": "repro.stream",
    "FleetScheduler": "repro.stream",
    "FleetSession": "repro.stream",
    "EddieServer": "repro.serve",
    "ServerConfig": "repro.serve",
    "EddieClient": "repro.serve",
    "ModelRegistry": "repro.serve",
    "RegistryEntry": "repro.serve",
    "serve_in_thread": "repro.serve",
    "ChaosConfig": "repro.serve",
    "ChaosProxy": "repro.serve",
    "ShardCluster": "repro.serve",
    "ShardRouter": "repro.serve",
    "WorkerSpec": "repro.serve",
    "DeviceVariant": "repro.transfer",
    "calibrate_model": "repro.transfer",
    "CalibrationResult": "repro.transfer",
    "CalibrationReport": "repro.transfer",
    "CalibrationInfo": "repro.core.model",
    "FrontendStage": "repro.dsp",
    "StreamingStage": "repro.dsp",
    "FrontendChain": "repro.dsp",
    "AgcStage": "repro.dsp",
    "FirGateStage": "repro.dsp",
    "SvdDenoiser": "repro.dsp",
    "apply_frontend": "repro.dsp",
}

__all__ = [
    "Eddie",
    "TrainedDetector",
    "MonitorReport",
    "EddieConfig",
    "Monitor",
    "MonitorResult",
    "AnomalyReport",
    "StreamingMonitor",
    "StreamSummary",
    "StreamSnapshot",
    "FleetScheduler",
    "FleetSession",
    "EddieServer",
    "ServerConfig",
    "EddieClient",
    "ModelRegistry",
    "RegistryEntry",
    "serve_in_thread",
    "ChaosConfig",
    "ChaosProxy",
    "ShardCluster",
    "ShardRouter",
    "WorkerSpec",
    "DeviceVariant",
    "calibrate_model",
    "CalibrationResult",
    "CalibrationReport",
    "CalibrationInfo",
    "FrontendStage",
    "StreamingStage",
    "FrontendChain",
    "AgcStage",
    "FirGateStage",
    "SvdDenoiser",
    "apply_frontend",
    "ReproError",
    "AnalysisError",
    "ConfigurationError",
    "MonitoringError",
    "ProtocolError",
    "RegistryError",
    "ServeError",
    "ServeTimeoutError",
    "SignalError",
    "SimulationError",
    "TrainingError",
    "__version__",
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
