"""Command-line interface: ``eddie <subcommand>``.

Subcommands:

- ``train``      train a detector on a built-in benchmark, save the model
- ``monitor``    run clean/injected monitoring runs against a saved model
- ``stream``     feed captures chunk-by-chunk through the streaming fleet
- ``calibrate``  adapt a trained model to a target device variant from a
  short unlabeled capture, without retraining
- ``publish``    publish a trained model into a serving registry
- ``serve``      serve EM monitoring over TCP from a registry
- ``client``     stream captures to a running ``eddie serve``
- ``experiment`` regenerate one of the paper's tables/figures
- ``obs``        work with run manifests (``obs diff A B``)
- ``list``       list benchmarks and experiments

Examples::

    eddie train bitcount -o bitcount.npz --runs 8
    eddie train sha -o sha_denoised.npz --denoise
    eddie monitor bitcount bitcount.npz --inject-loop --seed 7
    eddie stream bitcount bitcount.npz --sessions 8 --chunk-samples 4096
    eddie calibrate sha.npz --capture target_cap.npz -o sha_target.npz
    eddie publish bitcount.npz --registry runs/registry
    eddie calibrate sha@latest --capture cap.npz --registry runs/registry
    eddie serve --registry runs/registry --port 7453
    eddie client bitcount@latest --port 7453 --benchmark bitcount
    eddie experiment table1 --scale quick
    eddie experiment table2 --trace --manifest-dir runs/
    eddie obs diff runs/table2_quick.json other/table2_quick.json
    eddie list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro.arch.config import CoreConfig
from repro.core.detector import Eddie, TrainedDetector
from repro.core.model import EddieConfig
from repro.em.scenario import EmScenario
from repro.errors import ConfigurationError, ReproError
from repro.experiments.runner import Scale
from repro.programs.mibench import BENCHMARKS, INJECTION_LOOPS
from repro.programs.workloads import injection_mix
from repro.serialize import load_model, save_model

__all__ = ["main"]

_EXPERIMENTS: Dict[str, str] = {
    "fig1": "repro.experiments.fig1_spectrum",
    "fig2": "repro.experiments.fig2_distribution",
    "fig3": "repro.experiments.fig3_buffer_size",
    "table1": "repro.experiments.table1_iot",
    "table2": "repro.experiments.table2_sim",
    "fig4": "repro.experiments.fig4_inorder_ooo",
    "anova": "repro.experiments.anova_architecture",
    "fig5": "repro.experiments.fig5_contamination",
    "fig6": "repro.experiments.fig6_injection_size",
    "fig7": "repro.experiments.fig7_contamination_latency",
    "fig8": "repro.experiments.fig8_burst_size",
    "fig9": "repro.experiments.fig9_confidence",
    "fig10": "repro.experiments.fig10_instruction_type",
}

_SCALES: Dict[str, Callable[[], Scale]] = {
    "quick": Scale.quick,
    "default": Scale.default,
    "paper": Scale.paper,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eddie",
        description="EDDIE (ISCA 2017) reproduction: EM-based detection of "
                    "deviations in program execution.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a detector on a benchmark")
    train.add_argument("benchmark", choices=sorted(BENCHMARKS))
    train.add_argument("-o", "--output", required=True, help="model file (.npz)")
    train.add_argument("--runs", type=int, default=8)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--source", choices=("em", "power"), default="em")
    train.add_argument("--denoise", action="store_true",
                       help="attach the noisy-environment front end "
                            "(FIR band gate + SVD subspace denoiser, the "
                            "bench_denoise 'denoised' tier)")
    train.add_argument("--frontend", default=None, metavar="JSON",
                       help="preprocessing chain as a JSON stage list, "
                            "e.g. '[{\"type\": \"fir_gate\", "
                            "\"cutoff\": 0.5}]' "
                            "(types: agc, fir_gate, svd_denoiser)")
    train.add_argument("--clock", type=float, default=1e8,
                       help="core clock in Hz (scaled-down default)")

    monitor = sub.add_parser("monitor", help="monitor runs against a model")
    monitor.add_argument("benchmark", choices=sorted(BENCHMARKS))
    monitor.add_argument("model", help="model file from `eddie train`")
    monitor.add_argument("--runs", type=int, default=3)
    monitor.add_argument("--seed", type=int, default=1000)
    monitor.add_argument("--source", choices=("em", "power"), default="em")
    monitor.add_argument("--clock", type=float, default=1e8)
    monitor.add_argument("--inject-loop", action="store_true",
                         help="inject 4 int + 4 mem instructions into the "
                              "benchmark's hot loop")
    monitor.add_argument("--contamination", type=float, default=1.0)
    _add_fault_args(monitor)
    monitor.add_argument("--quality-gating", action="store_true",
                         help="skip acquisition-corrupted windows as "
                              "unscorable and resynchronize after gaps "
                              "instead of reporting them as anomalies")

    experiment = sub.add_parser(
        "experiment", help="regenerate a table/figure of the paper"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    experiment.add_argument("--jobs", default="1", metavar="N|auto",
                            help="fan independent runs over N worker "
                                 "processes ('auto' = one per CPU); results "
                                 "are identical to --jobs 1")
    experiment.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="content-addressed artifact cache for "
                                 "trained models and simulated traces "
                                 "(default: $REPRO_CACHE_DIR if set)")
    experiment.add_argument("--cache-max-bytes", type=int, default=None,
                            help="evict least-recently-used cache entries "
                                 "beyond this size")
    experiment.add_argument("--no-cache", action="store_true",
                            help="disable the artifact cache even if "
                                 "$REPRO_CACHE_DIR is set")
    experiment.add_argument("--trace", action="store_true",
                            help="enable observability and print the span "
                                 "tree and metric summary after the run")
    experiment.add_argument("--manifest-dir", default=None, metavar="DIR",
                            help="enable observability and write a JSON run "
                                 "manifest (config fingerprint, seeds, git "
                                 "SHA, timings, metrics) into DIR")

    obs_cmd = sub.add_parser(
        "obs", help="work with observability artifacts (run manifests)"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_diff = obs_sub.add_parser(
        "diff", help="structurally diff two run manifests"
    )
    obs_diff.add_argument("manifest_a", help="first manifest JSON file")
    obs_diff.add_argument("manifest_b", help="second manifest JSON file")
    obs_diff.add_argument("--all", action="store_true",
                          help="also compare the timings and environment "
                               "sections (ignored by default: they "
                               "legitimately differ between reruns)")
    obs_diff.add_argument("--rtol", type=float, default=1e-9,
                          help="relative tolerance for numeric comparisons "
                               "(absorbs float summation-order jitter "
                               "between serial and parallel runs)")
    obs_stats = obs_sub.add_parser(
        "stats",
        help="print a serving STATS snapshot (fleet-wide when pointed "
             "at a shard router)",
    )
    obs_stats.add_argument("--host", default="127.0.0.1")
    obs_stats.add_argument("--port", type=int, default=7453)
    obs_stats.add_argument("--json", action="store_true",
                           help="dump the raw merged payload instead of "
                                "the summary lines")

    capture = sub.add_parser(
        "capture", help="capture EM traces of a benchmark to .npz files"
    )
    capture.add_argument("benchmark", choices=sorted(BENCHMARKS))
    capture.add_argument("-o", "--output-prefix", required=True,
                         help="trace files are written as <prefix><seed>.npz")
    capture.add_argument("--runs", type=int, default=1)
    capture.add_argument("--seed", type=int, default=0)
    capture.add_argument("--clock", type=float, default=1e8)
    capture.add_argument("--inject-loop", action="store_true")
    capture.add_argument("--contamination", type=float, default=1.0)
    _add_fault_args(capture)

    monitor_trace = sub.add_parser(
        "monitor-trace", help="monitor previously captured trace files"
    )
    monitor_trace.add_argument("model", help="model file from `eddie train`")
    monitor_trace.add_argument("traces", nargs="+", help="trace .npz files")
    monitor_trace.add_argument("--quality-gating", action="store_true",
                               help="skip acquisition-corrupted windows as "
                                    "unscorable (see `eddie monitor`)")

    stream = sub.add_parser(
        "stream",
        help="monitor captures chunk-by-chunk through the streaming engine",
    )
    stream.add_argument("benchmark", choices=sorted(BENCHMARKS))
    stream.add_argument("model", help="model file from `eddie train`")
    stream.add_argument("--sessions", type=int, default=4,
                        help="concurrent fleet sessions (one capture each)")
    stream.add_argument("--chunk-samples", type=int, default=4096,
                        help="samples per chunk fed to each session")
    stream.add_argument("--runs", type=int, default=1,
                        help="captures per session, fed back to back")
    stream.add_argument("--seed", type=int, default=1000)
    stream.add_argument("--clock", type=float, default=1e8)
    stream.add_argument("--inject-loop", action="store_true",
                        help="inject into the hot loop (see `eddie monitor`)")
    stream.add_argument("--contamination", type=float, default=1.0)
    stream.add_argument("--early-exit", action="store_true",
                        help="stop each session at its first anomaly")
    stream.add_argument("--quality-gating", action="store_true",
                        help="causal acquisition-quality gating per window")

    calibrate = sub.add_parser(
        "calibrate",
        help="adapt a trained model to a target device from a short "
             "unlabeled capture (train once, deploy many)",
    )
    calibrate.add_argument("model",
                           help="model .npz file, or a registry spec when "
                                "--registry is given")
    calibrate.add_argument("--capture", required=True, metavar="TRACE",
                           help="short unlabeled capture of the target "
                                "device (`eddie capture` .npz)")
    calibrate.add_argument("-o", "--output", default=None, metavar="FILE",
                           help="write the derived model to FILE")
    calibrate.add_argument("--registry", default=None, metavar="DIR",
                           help="resolve MODEL from this registry and "
                                "publish the derived model back as "
                                "name@N+cal:FP")
    calibrate.add_argument("--variant", default="",
                           help="free-form target-device description, "
                                "recorded in the calibration provenance")

    publish = sub.add_parser(
        "publish", help="publish a trained model into a serving registry"
    )
    publish.add_argument("model", help="model file from `eddie train`")
    publish.add_argument("--registry", required=True, metavar="DIR",
                         help="registry directory (created if missing)")
    publish.add_argument("--name", default=None,
                         help="model name (default: the trained program)")
    publish.add_argument("--version", type=int, default=None,
                         help="explicit version (default: latest + 1)")

    serve = sub.add_parser(
        "serve", help="serve EM monitoring over TCP from a model registry"
    )
    serve.add_argument("--registry", required=True, metavar="DIR",
                       help="registry directory from `eddie publish`")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7453)
    serve.add_argument("--max-sessions", type=int, default=64,
                       help="fleet capacity; OPENs beyond it are shed "
                            "with a typed at_capacity error")
    serve.add_argument("--evict-idle", action="store_true",
                       help="admit over-capacity sessions by evicting the "
                            "least-recently-fed one instead of shedding "
                            "the newcomer")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="per-session bound on decoded-but-unscored "
                            "chunks (ingestion backpressure)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes behind a shard router; 1 "
                            "runs a single in-process server, N>1 "
                            "places sessions by consistent hash and "
                            "scales the DSP across cores")
    serve.add_argument("--threads", type=int, default=4,
                       help="DSP thread-pool size per worker")
    serve.add_argument("--checkpoint-interval", type=int, default=16,
                       metavar="CHUNKS",
                       help="checkpoint each session to disk every N "
                            "chunks so dropped clients can RESUME "
                            "(0 disables checkpointing)")
    serve.add_argument("--spill-dir", default=None, metavar="DIR",
                       help="where session checkpoints are spilled "
                            "(default: <registry>/.sessions); point "
                            "successive servers at the same registry and "
                            "spill dir to survive restarts")

    client = sub.add_parser(
        "client", help="stream captures to a running `eddie serve`"
    )
    client.add_argument("model_spec",
                        help="registry spec: name, name@N, name@latest, "
                             "or fp:HEXPREFIX")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7453)
    client.add_argument("--trace", action="append", default=[],
                        metavar="FILE",
                        help="captured trace .npz to replay (repeatable); "
                             "mutually exclusive with --benchmark")
    client.add_argument("--benchmark", choices=sorted(BENCHMARKS),
                        default=None,
                        help="synthesize captures to stream instead of "
                             "replaying trace files")
    client.add_argument("--runs", type=int, default=1,
                        help="captures to synthesize with --benchmark")
    client.add_argument("--seed", type=int, default=1000)
    client.add_argument("--clock", type=float, default=1e8)
    client.add_argument("--inject-loop", action="store_true",
                        help="inject into the hot loop (see `eddie monitor`)")
    client.add_argument("--contamination", type=float, default=1.0)
    client.add_argument("--chunk-samples", type=int, default=4096)
    client.add_argument("--window", type=int, default=8,
                        help="chunks kept in flight before blocking on "
                             "REPORTs")
    client.add_argument("--connect-timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="deadline for dialing (and redialing) the "
                             "server")
    client.add_argument("--io-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="deadline for each blocking send/recv once "
                             "connected")
    client.add_argument("--no-reconnect", action="store_true",
                        help="fail on a dropped connection instead of "
                             "resuming the session from the server's "
                             "last checkpoint")
    client.add_argument("--stats", action="store_true",
                        help="print the server's STATS snapshot afterwards")

    inspect = sub.add_parser(
        "inspect", help="show a benchmark's region-level state machine"
    )
    inspect.add_argument("benchmark", choices=sorted(BENCHMARKS))

    sub.add_parser("list", help="list benchmarks and experiments")
    return parser


_FAULT_KINDS = ("none", "drops", "clipping", "mixed", "full")


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", choices=_FAULT_KINDS, default="none",
                        help="inject acquisition faults into the capture: "
                             "sample-drop gaps, saturation bursts, both, or "
                             "the full mix (plus gain steps, impulses, and "
                             "dead stretches)")
    parser.add_argument("--fault-rate", type=float, default=200.0,
                        help="mean fault events per second of capture")


def _make_fault_injector(kind: str, rate: float):
    """Build the FaultInjector behind --faults/--fault-rate (None for none)."""
    if kind == "none":
        return None
    from repro.em.faults import (
        DeadChannelFault,
        FaultInjector,
        GainStepFault,
        ImpulseNoiseFault,
        SampleDropFault,
        SaturationFault,
    )

    if rate <= 0:
        raise ConfigurationError(f"--fault-rate must be positive, got {rate}")
    faults = []
    if kind in ("drops", "mixed", "full"):
        faults.append(SampleDropFault(rate_per_s=rate))
    if kind in ("clipping", "mixed", "full"):
        faults.append(SaturationFault(rate_per_s=rate))
    if kind == "full":
        faults.extend([
            GainStepFault(rate_per_s=rate / 4),
            ImpulseNoiseFault(rate_per_s=rate),
            DeadChannelFault(rate_per_s=rate / 10),
        ])
    return FaultInjector(faults=tuple(faults))


def _make_source(benchmark: str, source: str, clock: float, faults=None):
    program = BENCHMARKS[benchmark]()
    if source == "em":
        return EmScenario.build(
            program, core=CoreConfig.iot_inorder(clock), faults=faults
        )
    from repro.arch.simulator import Simulator

    return Simulator(program, CoreConfig.sim_ooo(clock))


def _parse_frontend(args: argparse.Namespace):
    """The preprocessing chain requested by ``--denoise``/``--frontend``."""
    if args.denoise and args.frontend:
        raise ConfigurationError(
            "--denoise and --frontend are mutually exclusive; put the "
            "full chain in --frontend instead"
        )
    if args.denoise:
        from repro.dsp import FirGateStage, SvdDenoiser

        return (
            FirGateStage(cutoff=0.5),
            SvdDenoiser(block_samples=2048, hankel_window=64, rank=8),
        )
    if args.frontend:
        import json

        from repro.dsp import stage_from_dict

        try:
            entries = json.loads(args.frontend)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"--frontend is not valid JSON: {error}"
            ) from None
        if not isinstance(entries, list):
            raise ConfigurationError(
                "--frontend must be a JSON list of stage objects"
            )
        return tuple(stage_from_dict(entry) for entry in entries)
    return ()


def _cmd_train(args: argparse.Namespace) -> int:
    program = BENCHMARKS[args.benchmark]()
    core = (
        CoreConfig.iot_inorder(args.clock)
        if args.source == "em"
        else CoreConfig.sim_ooo(args.clock)
    )
    frontend = _parse_frontend(args)
    config = EddieConfig(frontend=frontend) if frontend else None
    detector = Eddie(config).train(
        program, core=core, runs=args.runs, seed=args.seed, source=args.source
    )
    save_model(detector.model, args.output)
    print(f"trained {args.benchmark} on {args.runs} runs -> {args.output}")
    if frontend:
        chain = " -> ".join(stage.stage_type for stage in frontend)
        print(f"  frontend: {chain}")
    for name, profile in detector.model.profiles.items():
        print(
            f"  {name:32s} refs={profile.n_reference:5d} "
            f"peaks={profile.num_peaks:2d} n={profile.group_size}"
        )
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    if model.program_name != args.benchmark:
        print(
            f"warning: model was trained on {model.program_name!r}, "
            f"monitoring {args.benchmark!r}",
            file=sys.stderr,
        )
    faults = _make_fault_injector(args.faults, args.fault_rate)
    if faults is not None and args.source != "em":
        raise ConfigurationError(
            "--faults models the EM acquisition chain; use --source em"
        )
    if args.quality_gating:
        model = model.with_quality_gating(True)
    source = _make_source(args.benchmark, args.source, args.clock, faults)
    detector = TrainedDetector(model, source=source)
    simulator = source.simulator if isinstance(source, EmScenario) else source
    if args.inject_loop:
        simulator.set_loop_injection(
            INJECTION_LOOPS[args.benchmark], injection_mix(4, 4),
            args.contamination,
        )
    for k in range(args.runs):
        report = detector.monitor(seed=args.seed + k)
        metrics = report.metrics
        latency = (
            f"{metrics.detection_latency * 1e3:.2f} ms"
            if metrics.detection_latency is not None
            else "-"
        )
        line = (
            f"run {k}: reports={len(report.result.reports)} "
            f"detected={metrics.detected} latency={latency} "
            f"FP={metrics.false_positive_rate:.2f}% "
            f"coverage={metrics.coverage:.1f}%"
        )
        if faults is not None or args.quality_gating:
            fp_unfaulted = metrics.false_positive_rate_unfaulted
            line += (
                f" faulted-groups={metrics.n_faulted_groups}"
                f" unscorable={metrics.n_unscorable}"
                f" desyncs={metrics.n_desyncs}"
                f" status={metrics.status}"
            )
            if fp_unfaulted is not None:
                line += f" FP(unfaulted)={fp_unfaulted:.2f}%"
        print(line)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    from repro import cache as artifact_cache
    from repro import obs
    from repro.experiments.runner import resolve_jobs

    if args.no_cache:
        if args.cache_dir is not None:
            raise ConfigurationError("--no-cache conflicts with --cache-dir")
        artifact_cache.disable()
    elif args.cache_dir is not None:
        artifact_cache.configure(args.cache_dir, max_bytes=args.cache_max_bytes)

    observe = args.trace or args.manifest_dir is not None
    if observe:
        obs.enable()
        obs.reset()

    jobs = args.jobs if args.jobs == "auto" else resolve_jobs(args.jobs)
    module = importlib.import_module(_EXPERIMENTS[args.name])
    scale = _SCALES[args.scale]()
    result = module.run(scale, jobs=jobs)
    print(module.format(result))
    cache = artifact_cache.get_cache()
    if cache is not None:
        stats = cache.stats
        print(
            f"[cache] dir={cache.dir} hits={stats.hits} "
            f"misses={stats.misses} puts={stats.puts} "
            f"hit-rate={stats.hit_rate:.0%}",
            file=sys.stderr,
        )
    if observe:
        if args.trace:
            print("\n[trace]", file=sys.stderr)
            print(obs.format_span_tree(), file=sys.stderr)
        if args.manifest_dir is not None:
            cache_info = None
            if cache is not None:
                cache_info = {"max_bytes": cache.max_bytes}
            manifest = obs.build_manifest(
                args.name,
                scale=scale,
                result=result,
                jobs=jobs,
                scale_name=args.scale,
                cache_info=cache_info,
            )
            path = obs.manifest_path(args.manifest_dir, args.name, args.scale)
            obs.write_manifest(manifest, path)
            print(f"[manifest] {path}", file=sys.stderr)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "stats":
        return _cmd_obs_stats(args)
    from repro import obs

    a = obs.load_manifest(args.manifest_a)
    b = obs.load_manifest(args.manifest_b)
    ignore = () if args.all else obs.DEFAULT_DIFF_IGNORE
    diffs = obs.diff_manifests(a, b, ignore=ignore, rtol=args.rtol)
    if not diffs:
        note = "" if args.all else " (timings/environment ignored)"
        print(f"manifests agree{note}")
        return 0
    print(obs.format_diff(diffs))
    return 1


def _cmd_obs_stats(args: argparse.Namespace) -> int:
    """Print a server's (or a shard router's merged) STATS snapshot."""
    import json

    from repro.serve import EddieClient

    with EddieClient(args.host, args.port) as cli:
        stats = cli.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    router = stats.get("router")
    if router is not None:
        print(
            f"cluster: {router['workers_responding']}"
            f"/{router['workers_configured']} workers responding, "
            f"{router['redirects']} redirects, {router['splices']} "
            f"splices, {router['placement_failures']} placement failures"
        )
        for worker in stats.get("workers", []):
            print(
                f"  worker {worker.get('worker')}: "
                f"open={worker['sessions_open']}/{worker['max_sessions']} "
                f"chunks={worker['chunks']} windows={worker['windows']} "
                f"checkpoints={worker['checkpoints']}"
            )
    print(
        f"sessions: open={stats['sessions_open']}"
        f"/{stats['max_sessions']} opened={stats['sessions_opened']} "
        f"closed={stats['sessions_closed']} shed={stats['sessions_shed']} "
        f"evicted={stats['sessions_evicted']} "
        f"resumed={stats['sessions_resumed']}"
    )
    print(
        f"work: chunks={stats['chunks']} windows={stats['windows']} "
        f"reports={stats['reports']} checkpoints={stats['checkpoints']} "
        f"bytes_in={stats['bytes_in']} bytes_out={stats['bytes_out']}"
    )
    print(
        f"state: draining={stats['draining']} "
        f"protocol_errors={stats['protocol_errors']}"
    )
    for session in stats.get("sessions", []):
        worker = session.get("worker")
        where = f" (worker {worker})" if worker is not None else ""
        print(
            f"  session {session.get('session')}{where}: "
            f"model {session.get('model')}"
        )
    return 0


def _cmd_capture(args: argparse.Namespace) -> int:
    from repro.serialize import save_trace

    scenario = EmScenario.build(
        BENCHMARKS[args.benchmark](), core=CoreConfig.iot_inorder(args.clock),
        faults=_make_fault_injector(args.faults, args.fault_rate),
    )
    if args.inject_loop:
        scenario.simulator.set_loop_injection(
            INJECTION_LOOPS[args.benchmark], injection_mix(4, 4),
            args.contamination,
        )
    for k in range(args.runs):
        seed = args.seed + k
        trace = scenario.capture(seed=seed)
        path = f"{args.output_prefix}{seed}.npz"
        save_trace(trace, path)
        print(
            f"captured seed {seed}: {trace.iq.duration * 1e3:.2f} ms, "
            f"{len(trace.iq)} IQ samples, "
            f"{trace.injected_instr_count} injected instrs, "
            f"{len(trace.fault_spans)} fault spans -> {path}"
        )
    return 0


def _cmd_monitor_trace(args: argparse.Namespace) -> int:
    from repro.serialize import load_trace

    model = load_model(args.model)
    if args.quality_gating:
        model = model.with_quality_gating(True)
    detector = TrainedDetector(model, source=None)
    for path in args.traces:
        trace = load_trace(path)
        report = detector.monitor(trace)
        metrics = report.metrics
        latency = (
            f"{metrics.detection_latency * 1e3:.2f} ms"
            if metrics.detection_latency is not None
            else "-"
        )
        line = (
            f"{path}: reports={len(report.result.reports)} "
            f"detected={metrics.detected} latency={latency} "
            f"FP={metrics.false_positive_rate:.2f}%"
        )
        if trace.fault_spans or args.quality_gating:
            line += (
                f" faulted-groups={metrics.n_faulted_groups}"
                f" unscorable={metrics.n_unscorable}"
                f" desyncs={metrics.n_desyncs}"
                f" status={metrics.status}"
            )
        print(line)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import itertools

    from repro.stream import FleetScheduler

    model = load_model(args.model)
    if model.program_name != args.benchmark:
        print(
            f"warning: model was trained on {model.program_name!r}, "
            f"streaming {args.benchmark!r}",
            file=sys.stderr,
        )
    if args.quality_gating:
        model = model.with_quality_gating(True)
    if args.sessions < 1:
        raise ConfigurationError(
            f"--sessions must be >= 1, got {args.sessions}"
        )
    scenario = _make_source(args.benchmark, "em", args.clock)
    if args.inject_loop:
        scenario.simulator.set_loop_injection(
            INJECTION_LOOPS[args.benchmark], injection_mix(4, 4),
            args.contamination,
        )
    fleet = FleetScheduler(
        max_sessions=args.sessions, early_exit=args.early_exit
    )
    for s in range(args.sessions):
        # The seed list is materialized eagerly: a genexpr over `base + k`
        # would close over the loop variable and stream every session from
        # the last session's seeds.
        seeds = [args.seed + s * args.runs + k for k in range(args.runs)]
        source = itertools.chain.from_iterable(
            scenario.capture_chunks(args.chunk_samples, seed=sd)
            for sd in seeds
        )
        fleet.add_session(f"dev-{s:03d}", model, source=source)
    rounds = 0
    while fleet.step_round():
        rounds += 1
    summaries = fleet.summaries
    for session_id in sorted(summaries):
        s = summaries[session_id]
        print(
            f"{session_id}: chunks={s.chunks} windows={s.windows} "
            f"reports={len(s.reports)} detected={s.detected} "
            f"unscorable={s.unscorable_fraction:.1%} status={s.status}"
            + (" (early exit)" if s.stopped_early else "")
        )
    detected = sum(1 for s in summaries.values() if s.detected)
    print(
        f"fleet: {len(summaries)} sessions, {rounds} dispatch rounds, "
        f"{detected} detected"
    )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.serialize import load_trace, save_model
    from repro.transfer import calibrate_model

    if args.output is None and args.registry is None:
        print(
            "error: nowhere to put the derived model; pass -o FILE "
            "and/or --registry DIR",
            file=sys.stderr,
        )
        return 2
    registry = base_entry = None
    if args.registry is not None:
        from repro.serve import ModelRegistry

        registry = ModelRegistry(args.registry)
        model, base_entry = registry.load(args.model)
    else:
        model = load_model(args.model)
    capture = load_trace(args.capture)
    result = calibrate_model(model, capture, variant=args.variant)
    print(result.report.format())
    if registry is not None:
        entry = registry.publish_derived(result.model, base_entry)
        print(
            f"published {entry.spec} (fp:{entry.fingerprint[:12]}) "
            f"-> {entry.path}"
        )
    if args.output is not None:
        save_model(result.model, args.output)
        print(f"saved derived model -> {args.output}")
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    from repro.serve import ModelRegistry

    registry = ModelRegistry(args.registry)
    entry = registry.publish(
        load_model(args.model), args.name, version=args.version
    )
    print(
        f"published {entry.spec} (fp:{entry.fingerprint[:12]}) "
        f"-> {entry.path}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from repro.serve import EddieServer, ModelRegistry, ServerConfig

    registry = ModelRegistry(args.registry)
    entries = registry.list_entries()
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        evict_idle=args.evict_idle,
        queue_depth=args.queue_depth,
        worker_threads=args.threads,
        checkpoint_interval=args.checkpoint_interval,
        spill_dir=args.spill_dir,
    )
    if args.workers > 1:
        return _serve_sharded(args, registry, entries, config)

    async def _run() -> None:
        server = EddieServer(registry, config=config)
        await server.start()
        host, port = server.address
        print(
            f"serving on {host}:{port} -- {len(entries)} published "
            f"model(s) in {registry.root}, max {config.max_sessions} "
            f"sessions ({'evict-idle' if config.evict_idle else 'shed'} "
            f"at capacity), checkpoints every "
            f"{config.checkpoint_interval or 'never'} chunk(s) "
            f"-> {server.spill_dir}"
        )
        for entry in entries:
            print(f"  {entry.spec:32s} fp:{entry.fingerprint[:12]}")
        # SIGTERM/SIGINT trigger a graceful drain: every live session is
        # checkpointed and suspended, so clients resume against the next
        # server pointed at the same registry + spill dir.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        print("draining...", file=sys.stderr)
        final = await server.drain()
        await server.stop()
        print(
            f"drained: {final['sessions_suspended']} session(s) "
            f"suspended for resume, {final['checkpoints']} checkpoint(s) "
            f"written",
            file=sys.stderr,
        )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("stopped", file=sys.stderr)
    return 0


def _serve_sharded(args, registry, entries, config) -> int:
    """`eddie serve --workers N`: worker processes behind a shard router.

    Each worker is a full :class:`EddieServer` in its own process with
    its own spill namespace; the router at (host, port) places sessions
    by consistent hash. SIGTERM/SIGINT drain every worker gracefully
    (sessions checkpoint and suspend, clients RESUME against a restarted
    cluster at the same registry).
    """
    import dataclasses
    import signal
    import threading

    from repro.serve import ShardCluster

    # The router owns the public port; workers bind ephemeral ports.
    worker_config = dataclasses.replace(config, port=0)
    cluster = ShardCluster(
        registry,
        workers=args.workers,
        mode="process",
        config=worker_config,
        host=args.host,
        router_port=args.port,
        spill_root=args.spill_dir,
    )
    cluster.start()
    try:
        host, port = cluster.address
        print(
            f"serving on {host}:{port} -- {args.workers} worker "
            f"process(es) behind a shard router, {len(entries)} "
            f"published model(s) in {registry.root}, "
            f"{config.max_sessions} sessions/worker, checkpoints every "
            f"{config.checkpoint_interval or 'never'} chunk(s) "
            f"-> {cluster.spill_root}"
        )
        for worker_id, whost, wport in cluster.worker_addresses:
            print(f"  worker {worker_id}: {whost}:{wport}")
        for entry in entries:
            print(f"  {entry.spec:32s} fp:{entry.fingerprint[:12]}")
        stop = threading.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda *_: stop.set())
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        print("draining workers...", file=sys.stderr)
        for worker_id, _, _ in cluster.worker_addresses:
            cluster.drain_worker(worker_id)
        print("drained", file=sys.stderr)
    finally:
        cluster.stop()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.serve import EddieClient

    if bool(args.trace) == (args.benchmark is not None):
        raise ConfigurationError(
            "give exactly one of --trace or --benchmark"
        )
    if args.trace:
        from repro.serialize import load_trace

        captures = [(path, load_trace(path)) for path in args.trace]
    else:
        scenario = _make_source(args.benchmark, "em", args.clock)
        if args.inject_loop:
            scenario.simulator.set_loop_injection(
                INJECTION_LOOPS[args.benchmark], injection_mix(4, 4),
                args.contamination,
            )
        captures = [
            (
                f"{args.benchmark} seed {args.seed + k}",
                scenario.capture(seed=args.seed + k),
            )
            for k in range(args.runs)
        ]
    # One connection per capture: the server scopes a connection to a
    # single monitoring session.
    for label, trace in captures:
        with EddieClient(
            args.host, args.port,
            window=args.window,
            connect_timeout=args.connect_timeout,
            io_timeout=args.io_timeout,
            reconnect=not args.no_reconnect,
        ) as cli:
            cli.open(args.model_spec, t0=trace.iq.t0)
            for report in cli.replay(
                trace, chunk_samples=args.chunk_samples
            ):
                print(
                    f"  anomaly t={report.time * 1e3:9.3f} ms "
                    f"region={report.region} streak={report.streak}"
                )
            s = cli.last_summary
            line = (
                f"{label}: chunks={s.chunks} windows={s.windows} "
                f"reports={len(s.reports)} detected={s.detected} "
                f"status={s.status}"
            )
            if cli.reconnects:
                line += f" (resumed {cli.reconnects}x mid-stream)"
            print(line)
    if args.stats:
        with EddieClient(args.host, args.port) as cli:
            stats = cli.stats()
        print(
            f"server: open={stats['sessions_open']}"
            f"/{stats['max_sessions']} "
            f"opened={stats['sessions_opened']} "
            f"shed={stats['sessions_shed']} "
            f"evicted={stats['sessions_evicted']} "
            f"chunks={stats['chunks']} reports={stats['reports']}"
        )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.cfg.graph import ControlFlowGraph
    from repro.cfg.loops import find_loops
    from repro.cfg.regions import build_region_machine

    program = BENCHMARKS[args.benchmark]()
    cfg = ControlFlowGraph.from_program(program)
    forest = find_loops(cfg)
    machine = build_region_machine(program, cfg, forest)

    print(f"{program.name}: {len(cfg)} basic blocks, "
          f"{program.static_size} static instructions, "
          f"{len(program.params)} input parameters")
    print(f"\nloop regions ({len(machine.loop_regions)}):")
    for name, region in machine.loop_regions.items():
        nest = forest.by_header(region.header)
        depth = max((lp.depth for lp in forest if lp.blocks <= nest.blocks),
                    default=1)
        print(f"  {name:28s} blocks={len(region.blocks)} nest-depth={depth}")
    print(f"\ninter-loop regions ({len(machine.inter_regions)}):")
    for name, inter in machine.inter_regions.items():
        print(f"  {name:44s} via {len(inter.blocks)} block(s)")
    print("\nregion state machine:")
    for region in machine.region_names():
        successors = machine.successors(region)
        if successors:
            print(f"  {region} -> {', '.join(successors)}")
    print(f"\ndefault injection target: {INJECTION_LOOPS[args.benchmark]}")
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("benchmarks:")
    for name in BENCHMARKS:
        print(f"  {name} (injection target: {INJECTION_LOOPS[name]})")
    print("experiments:")
    for name, module in _EXPERIMENTS.items():
        print(f"  {name:8s} -> {module}")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "monitor": _cmd_monitor,
        "experiment": _cmd_experiment,
        "obs": _cmd_obs,
        "capture": _cmd_capture,
        "monitor-trace": _cmd_monitor_trace,
        "stream": _cmd_stream,
        "calibrate": _cmd_calibrate,
        "publish": _cmd_publish,
        "serve": _cmd_serve,
        "client": _cmd_client,
        "inspect": _cmd_inspect,
        "list": _cmd_list,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
