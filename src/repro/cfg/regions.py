"""The region-level state machine (Section 4.1 of the paper).

Construction, following the paper exactly:

1. Start from the basic-block CFG.
2. For each top-level loop nest, merge all its blocks into a single
   *loop-region* node, dropping intra-nest edges and nest-to-itself edges.
3. Eliminate every remaining basic-block node by connecting the sources of
   its incoming edges directly to its successors.
4. Merge parallel edges (same source and destination) into one.

The resulting graph has loop regions as states and *inter-loop regions* as
edges. Code before the first loop and after the last loop is modelled with
virtual ``ENTRY``/``EXIT`` states so those stretches are inter-loop regions
too (EDDIE must monitor them: the paper's shellcode bursts are injected
there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import Loop, LoopForest, find_loops
from repro.errors import AnalysisError
from repro.programs.ir import Program

__all__ = [
    "ENTRY",
    "EXIT",
    "LoopRegion",
    "InterLoopRegion",
    "RegionMachine",
    "build_region_machine",
]

ENTRY = "ENTRY"
EXIT = "EXIT"


@dataclass(frozen=True)
class LoopRegion:
    """A state of the region machine: one top-level loop nest."""

    name: str
    header: str
    blocks: FrozenSet[str]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class InterLoopRegion:
    """An edge of the region machine: code between two loop nests.

    ``src``/``dst`` name loop regions, or ``ENTRY``/``EXIT``. ``blocks``
    are the non-loop basic blocks that executions traversing this edge may
    pass through.
    """

    name: str
    src: str
    dst: str
    blocks: FrozenSet[str]

    def __str__(self) -> str:
        return self.name


class RegionMachine:
    """Region-level state machine of one program.

    Regions of both kinds are monitored entities in EDDIE: each gets a
    reference STS set during training. ``successors(region)`` yields the
    regions execution may move to next, which is what Algorithm 1 consults
    when a K-S test rejects the current region.
    """

    def __init__(
        self,
        program_name: str,
        loop_regions: List[LoopRegion],
        inter_regions: List[InterLoopRegion],
    ) -> None:
        self.program_name = program_name
        self.loop_regions: Dict[str, LoopRegion] = {r.name: r for r in loop_regions}
        self.inter_regions: Dict[str, InterLoopRegion] = {r.name: r for r in inter_regions}
        overlap = set(self.loop_regions) & set(self.inter_regions)
        if overlap:
            raise AnalysisError(f"region name collision: {sorted(overlap)}")
        self._block_to_loop_region: Dict[str, str] = {}
        for region in loop_regions:
            for block in region.blocks:
                self._block_to_loop_region[block] = region.name
        self._succ: Dict[str, List[str]] = {name: [] for name in self.region_names()}
        for inter in inter_regions:
            if inter.src != ENTRY:
                self._succ[inter.src].append(inter.name)
            if inter.dst != EXIT:
                self._succ[inter.name].append(inter.dst)

    # -- queries -------------------------------------------------------------

    def region_names(self) -> List[str]:
        """All region names (loop regions first, then inter-loop regions)."""
        return list(self.loop_regions) + list(self.inter_regions)

    def is_loop_region(self, name: str) -> bool:
        return name in self.loop_regions

    def region_of_block(self, block: str) -> Optional[str]:
        """The loop region containing ``block``, or None for non-loop blocks."""
        return self._block_to_loop_region.get(block)

    def inter_region_between(self, src: str, dst: str) -> Optional[str]:
        """Name of the inter-loop region from ``src`` to ``dst``, if any."""
        name = _inter_name(src, dst)
        return name if name in self.inter_regions else None

    def successors(self, region: str) -> List[str]:
        """Regions that may legally execute immediately after ``region``."""
        if region not in self._succ:
            raise AnalysisError(f"unknown region {region!r}")
        return list(self._succ[region])

    def initial_regions(self) -> List[str]:
        """Regions in which an execution may begin."""
        starts = [
            name
            for name, inter in self.inter_regions.items()
            if inter.src == ENTRY
        ]
        return starts or list(self.loop_regions)[:1]

    def __len__(self) -> int:
        return len(self.loop_regions) + len(self.inter_regions)

    def __repr__(self) -> str:
        return (
            f"RegionMachine({self.program_name!r}, loops={len(self.loop_regions)}, "
            f"inter={len(self.inter_regions)})"
        )


def _inter_name(src: str, dst: str) -> str:
    return f"inter:{src}->{dst}"


def _loop_name(header: str) -> str:
    return f"loop:{header}"


def build_region_machine(
    program: Program,
    cfg: Optional[ControlFlowGraph] = None,
    forest: Optional[LoopForest] = None,
) -> RegionMachine:
    """Build the region-level state machine of ``program``.

    Follows the paper's merge-then-eliminate construction (see module
    docstring). Programs with no loops at all yield a single inter-loop
    region ``inter:ENTRY->EXIT`` covering the whole execution.
    """
    if cfg is None:
        cfg = ControlFlowGraph.from_program(program)
    if forest is None:
        forest = find_loops(cfg, compute_dominators(cfg))

    nests: List[Loop] = forest.top_level()
    block_to_nest: Dict[str, str] = {}
    loop_regions: List[LoopRegion] = []
    for nest in nests:
        name = _loop_name(nest.header)
        loop_regions.append(LoopRegion(name=name, header=nest.header, blocks=nest.blocks))
        for block in nest.blocks:
            block_to_nest[block] = name

    if not nests:
        inter = InterLoopRegion(
            name=_inter_name(ENTRY, EXIT),
            src=ENTRY,
            dst=EXIT,
            blocks=frozenset(cfg.nodes),
        )
        return RegionMachine(program.name, [], [inter])

    # Step 2: collapse nests. Work on a node set of loop-region names plus
    # remaining plain blocks, with ENTRY/EXIT virtual endpoints.
    def node_of(block: str) -> str:
        return block_to_nest.get(block, block)

    plain_blocks = [b for b in cfg.nodes if b not in block_to_nest]

    edges: Set[Tuple[str, str]] = set()
    for src, dst in cfg.edges():
        a, b = node_of(src), node_of(dst)
        if a == b and a.startswith("loop:"):
            continue  # intra-nest or nest-to-itself edge
        edges.add((a, b))
    # Virtual endpoints.
    edges.add((ENTRY, node_of(program.entry)))
    for block in cfg.nodes:
        blk = program.block(block)
        if not blk.successors():  # Halt
            edges.add((node_of(block), EXIT))

    # Step 3: eliminate plain blocks by splicing predecessors to successors.
    # Track, per spliced edge, the set of plain blocks the path runs through.
    # Represent current edges with their traversed-block sets.
    edge_blocks: Dict[Tuple[str, str], Set[str]] = {e: set() for e in edges}
    for block in plain_blocks:
        incoming = [(s, d) for (s, d) in edge_blocks if d == block]
        outgoing = [(s, d) for (s, d) in edge_blocks if s == block]
        for (si, _) in incoming:
            for (_, do) in outgoing:
                if si == block and do == block:
                    continue
                key = (si, do)
                through = edge_blocks[(si, block)] | edge_blocks[(block, do)] | {block}
                if key in edge_blocks:
                    edge_blocks[key] |= through
                else:
                    edge_blocks[key] = set(through)
        for e in incoming + outgoing:
            edge_blocks.pop(e, None)
        # Self-edges on the eliminated block (cycles through plain blocks
        # only) cannot occur in reducible graphs once loops are collapsed.
        edge_blocks.pop((block, block), None)

    inter_regions: List[InterLoopRegion] = []
    for (src, dst), through in sorted(edge_blocks.items()):
        if src == dst:
            continue
        inter_regions.append(
            InterLoopRegion(
                name=_inter_name(src, dst),
                src=src,
                dst=dst,
                blocks=frozenset(through),
            )
        )

    return RegionMachine(program.name, loop_regions, inter_regions)
