"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm).

A node D dominates node N if every path from the entry to N passes through
D. Dominators are the textbook prerequisite for natural-loop detection:
an edge U -> V is a loop back edge exactly when V dominates U.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.graph import ControlFlowGraph

__all__ = ["DominatorTree", "compute_dominators"]


class DominatorTree:
    """Immediate-dominator mapping with convenience queries."""

    def __init__(self, idom: Dict[str, Optional[str]], entry: str, rpo_index: Dict[str, int]) -> None:
        self._idom = idom
        self.entry = entry
        self._rpo_index = rpo_index

    def idom(self, node: str) -> Optional[str]:
        """Immediate dominator of ``node`` (None for the entry)."""
        return self._idom[node]

    def dominates(self, dom: str, node: str) -> bool:
        """Whether ``dom`` dominates ``node`` (every node dominates itself)."""
        current: Optional[str] = node
        while current is not None:
            if current == dom:
                return True
            current = self._idom[current]
        return False

    def strictly_dominates(self, dom: str, node: str) -> bool:
        return dom != node and self.dominates(dom, node)

    def dominators_of(self, node: str) -> List[str]:
        """All dominators of ``node``, from the node up to the entry."""
        result = []
        current: Optional[str] = node
        while current is not None:
            result.append(current)
            current = self._idom[current]
        return result

    def children(self, node: str) -> Set[str]:
        """Nodes whose immediate dominator is ``node``."""
        return {n for n, d in self._idom.items() if d == node}


def compute_dominators(cfg: ControlFlowGraph) -> DominatorTree:
    """Compute the dominator tree of ``cfg``.

    Implements Cooper, Harvey & Kennedy, "A Simple, Fast Dominance
    Algorithm": iterate to a fixed point over reverse postorder, meeting
    predecessor dominators via the two-finger intersection on RPO numbers.
    """
    rpo = cfg.reverse_postorder()
    index = {node: i for i, node in enumerate(rpo)}
    idom: Dict[str, Optional[str]] = {node: None for node in rpo}
    idom[cfg.entry] = cfg.entry

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == cfg.entry:
                continue
            processed = [p for p in cfg.preds[node] if idom.get(p) is not None and p in index]
            if not processed:
                continue
            new_idom = processed[0]
            for pred in processed[1:]:
                new_idom = intersect(new_idom, pred)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True

    idom[cfg.entry] = None
    return DominatorTree(idom, cfg.entry, index)
