"""Static analysis substrate: CFG, dominators, loops, region state machine.

The paper derives a *region-level state machine* from each program with an
LLVM pass: every top-level loop nest becomes one state ("loop region"),
every inter-loop code stretch becomes an edge ("inter-loop region"). This
package reimplements that analysis over :mod:`repro.programs.ir`:

- :mod:`repro.cfg.graph` -- control-flow graph container and traversals,
- :mod:`repro.cfg.dominators` -- dominator tree (Cooper-Harvey-Kennedy),
- :mod:`repro.cfg.loops` -- back edges, natural loops, loop-nest forest,
- :mod:`repro.cfg.regions` -- the region-level state machine itself.
"""

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.dominators import DominatorTree, compute_dominators
from repro.cfg.loops import Loop, LoopForest, find_loops
from repro.cfg.regions import (
    ENTRY,
    EXIT,
    InterLoopRegion,
    LoopRegion,
    RegionMachine,
    build_region_machine,
)

__all__ = [
    "ControlFlowGraph",
    "DominatorTree",
    "compute_dominators",
    "Loop",
    "LoopForest",
    "find_loops",
    "RegionMachine",
    "LoopRegion",
    "InterLoopRegion",
    "build_region_machine",
    "ENTRY",
    "EXIT",
]
