"""Control-flow graph container and basic traversals."""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import AnalysisError
from repro.programs.ir import Program

__all__ = ["ControlFlowGraph"]


class ControlFlowGraph:
    """A directed graph over basic-block names.

    Nodes are block names; an edge A -> B means execution of A can be
    immediately followed by B. Construct from a :class:`Program` with
    :meth:`from_program`, or directly from an edge list (useful in tests).
    """

    def __init__(self, nodes: Iterable[str], edges: Iterable[Tuple[str, str]], entry: str) -> None:
        self.nodes: List[str] = list(dict.fromkeys(nodes))
        node_set = set(self.nodes)
        if entry not in node_set:
            raise AnalysisError(f"entry node {entry!r} not among nodes")
        self.entry = entry
        self.succs: Dict[str, List[str]] = {n: [] for n in self.nodes}
        self.preds: Dict[str, List[str]] = {n: [] for n in self.nodes}
        seen: Set[Tuple[str, str]] = set()
        for src, dst in edges:
            if src not in node_set or dst not in node_set:
                raise AnalysisError(f"edge ({src!r}, {dst!r}) references unknown node")
            if (src, dst) in seen:
                continue
            seen.add((src, dst))
            self.succs[src].append(dst)
            self.preds[dst].append(src)

    @classmethod
    def from_program(cls, program: Program) -> "ControlFlowGraph":
        """Build the CFG of a program, restricted to reachable blocks."""
        edges = []
        for block in program.blocks.values():
            for succ in block.successors():
                edges.append((block.name, succ))
        cfg = cls(program.block_names(), edges, program.entry)
        reachable = cfg.reachable_from_entry()
        if reachable != set(cfg.nodes):
            keep = [n for n in cfg.nodes if n in reachable]
            kept_edges = [(s, d) for s, d in edges if s in reachable and d in reachable]
            cfg = cls(keep, kept_edges, program.entry)
        return cfg

    def edges(self) -> List[Tuple[str, str]]:
        return [(src, dst) for src in self.nodes for dst in self.succs[src]]

    def reachable_from_entry(self) -> Set[str]:
        """Nodes reachable from the entry node."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            node = stack.pop()
            for succ in self.succs[node]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def reverse_postorder(self) -> List[str]:
        """Reverse postorder from the entry (a topological-ish order)."""
        visited: Set[str] = set()
        order: List[str] = []

        # Iterative DFS with an explicit stack to avoid recursion limits on
        # long block chains.
        stack: List[Tuple[str, int]] = [(self.entry, 0)]
        visited.add(self.entry)
        while stack:
            node, idx = stack[-1]
            succs = self.succs[node]
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                succ = succs[idx]
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, 0))
            else:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def __contains__(self, node: str) -> bool:
        return node in self.succs

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"ControlFlowGraph(nodes={len(self.nodes)}, edges={len(self.edges())})"
