"""Natural-loop detection and the loop-nest forest.

A back edge is an edge U -> V where V dominates U; the natural loop of the
back edge is V plus every node that can reach U without passing through V.
Loops sharing a header are merged. Nesting is containment of block sets;
the paper's "loop nest" is a maximal (top-level) loop together with all the
loops it contains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cfg.dominators import DominatorTree, compute_dominators
from repro.cfg.graph import ControlFlowGraph
from repro.errors import AnalysisError

__all__ = ["Loop", "LoopForest", "find_loops"]


@dataclass
class Loop:
    """One natural loop.

    Attributes:
        header: the loop header block (the target of its back edges).
        blocks: all blocks in the loop, header included.
        back_edges: the (latch, header) edges that define the loop.
        parent: the innermost loop strictly containing this one, or None.
        children: loops immediately nested inside this one.
    """

    header: str
    blocks: FrozenSet[str]
    back_edges: Tuple[Tuple[str, str], ...]
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Nesting depth: 1 for a top-level loop."""
        depth, loop = 1, self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    @property
    def is_top_level(self) -> bool:
        return self.parent is None

    def nest_blocks(self) -> FrozenSet[str]:
        """All blocks of the loop nest rooted here (same as ``blocks``)."""
        # Natural-loop block sets already include nested loops' blocks.
        return self.blocks

    def contains(self, other: "Loop") -> bool:
        """Whether ``other`` is strictly nested inside this loop."""
        return other is not self and other.blocks < self.blocks

    def exits(self, cfg: ControlFlowGraph) -> List[Tuple[str, str]]:
        """Edges leaving the loop: (inside block, outside successor)."""
        out = []
        for block in sorted(self.blocks):
            for succ in cfg.succs[block]:
                if succ not in self.blocks:
                    out.append((block, succ))
        return out

    def __repr__(self) -> str:
        return f"Loop(header={self.header!r}, blocks={len(self.blocks)}, depth={self.depth})"


class LoopForest:
    """All loops of a CFG, organized by nesting."""

    def __init__(self, loops: List[Loop], cfg: ControlFlowGraph) -> None:
        self.loops = loops
        self.cfg = cfg
        self._by_header = {loop.header: loop for loop in loops}
        # Innermost loop containing each block.
        self._innermost: Dict[str, Loop] = {}
        for loop in sorted(loops, key=lambda lp: len(lp.blocks), reverse=True):
            for block in loop.blocks:
                self._innermost[block] = loop

    def by_header(self, header: str) -> Loop:
        try:
            return self._by_header[header]
        except KeyError:
            raise AnalysisError(f"no loop with header {header!r}") from None

    def top_level(self) -> List[Loop]:
        """Top-level loops (the paper's loop nests), in header order."""
        return [loop for loop in self.loops if loop.is_top_level]

    def innermost_containing(self, block: str) -> Optional[Loop]:
        """The innermost loop containing ``block``, or None."""
        return self._innermost.get(block)

    def top_level_containing(self, block: str) -> Optional[Loop]:
        """The top-level nest containing ``block``, or None."""
        loop = self._innermost.get(block)
        while loop is not None and loop.parent is not None:
            loop = loop.parent
        return loop

    def is_header(self, block: str) -> bool:
        return block in self._by_header

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)


def find_loops(cfg: ControlFlowGraph, domtree: Optional[DominatorTree] = None) -> LoopForest:
    """Find all natural loops in ``cfg`` and organize them into a forest.

    Raises :class:`AnalysisError` for irreducible control flow (a cycle
    whose entry does not dominate its other nodes) because the region
    construction -- like the paper's compiler pass -- assumes reducibility.
    """
    if domtree is None:
        domtree = compute_dominators(cfg)

    back_edges: Dict[str, List[str]] = {}
    forward_edges: List[Tuple[str, str]] = []
    for src, dst in cfg.edges():
        if domtree.dominates(dst, src):
            back_edges.setdefault(dst, []).append(src)
        else:
            forward_edges.append((src, dst))

    # Reducibility check: the CFG with all (dominator-based) back edges
    # removed must be acyclic; a remaining cycle means irreducible control
    # flow, which the region construction -- like the paper's compiler
    # pass -- does not support.
    cycle_edge = _find_cycle_edge(cfg.nodes, forward_edges)
    if cycle_edge is not None:
        src, dst = cycle_edge
        raise AnalysisError(
            f"irreducible control flow: edge {src!r} -> {dst!r} closes a "
            f"cycle but {dst!r} does not dominate {src!r}"
        )

    loops: List[Loop] = []
    for header in sorted(back_edges):
        latches = back_edges[header]
        blocks: Set[str] = {header}
        stack = []
        for latch in latches:
            if latch not in blocks:
                blocks.add(latch)
            stack.append(latch)
        while stack:
            node = stack.pop()
            if node == header:
                continue
            for pred in cfg.preds[node]:
                if pred not in blocks:
                    blocks.add(pred)
                    stack.append(pred)
        loops.append(
            Loop(
                header=header,
                blocks=frozenset(blocks),
                back_edges=tuple((latch, header) for latch in sorted(latches)),
            )
        )

    # Establish nesting: parent = smallest strictly-containing loop.
    for loop in loops:
        candidates = [other for other in loops if other.contains(loop)]
        if candidates:
            loop.parent = min(candidates, key=lambda lp: len(lp.blocks))
            loop.parent.children.append(loop)

    return LoopForest(loops, cfg)


def _find_cycle_edge(
    nodes: List[str], edges: List[Tuple[str, str]]
) -> Optional[Tuple[str, str]]:
    """Return an edge participating in a cycle of the given graph, or None.

    Iterative three-color DFS; a gray -> gray edge closes a cycle.
    """
    succs: Dict[str, List[str]] = {n: [] for n in nodes}
    for src, dst in edges:
        succs[src].append(dst)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in nodes}
    for root in nodes:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[str, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, idx = stack[-1]
            if idx < len(succs[node]):
                stack[-1] = (node, idx + 1)
                succ = succs[node][idx]
                if color[succ] == GRAY:
                    return (node, succ)
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    stack.append((succ, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return None
