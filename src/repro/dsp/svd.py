"""Windowed-Hankel SVD denoising (spectral-subspace projection).

Following *Detecting Code Injections in Noisy Environments Through EM
Signal Analysis and SVD Denoising* (arXiv 2212.05643): program loops put
a handful of strong quasi-periodic components into each short stretch of
the IQ stream, so a trajectory (Hankel) matrix built from that stretch
is numerically low-rank -- its leading singular subspace spans the loop
emission while wideband receiver noise spreads thinly over *all*
singular directions. Projecting onto the leading subspace and reading
the signal back off the anti-diagonals therefore raises the SNR of
exactly the spectral lines EDDIE's K-S test monitors, recovering
detection accuracy at noise levels where the raw spectra bury the
peaks.

Per block of ``block_samples`` samples ``x[0..N)``:

1. build the Hankel matrix ``H[i, j] = x[i + j]`` of shape
   ``(L, N - L + 1)`` with window ``L = hankel_window``;
2. compute the SVD ``H = U diag(s) V*`` and keep the leading ``r``
   directions -- a fixed ``rank``, or the smallest ``r`` whose singular
   energy reaches ``energy_keep`` of the total (adaptive: clean blocks
   keep almost everything, noisy blocks shed the noise floor);
3. reconstruct ``H_r`` and average its anti-diagonals back into a
   length-``N`` sequence (each output sample is the mean of every
   ``H_r[i, j]`` with ``i + j = k``).

Blocks are anchored at the start of the stream and processed
independently, so the streaming form (buffer to full blocks, flush the
final partial one) is bit-identical to batch for any chunking -- the
:class:`~repro.dsp.stage.BlockStage` contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dsp.stage import BlockStage, register_stage
from repro.errors import ConfigurationError

__all__ = ["SvdDenoiser"]

# The anti-diagonal index grid and its bin counts depend only on the
# (block length, Hankel window) pair; cache them per geometry so steady
# streams pay the setup once.
_GRID_CACHE: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}


def _hankel_grid(n: int, window: int) -> Tuple[np.ndarray, np.ndarray]:
    key = (n, window)
    cached = _GRID_CACHE.get(key)
    if cached is None:
        idx = np.arange(window)[:, None] + np.arange(n - window + 1)[None, :]
        counts = np.bincount(idx.ravel(), minlength=n).astype(float)
        if len(_GRID_CACHE) > 64:  # geometry churn: drop, don't grow
            _GRID_CACHE.clear()
        _GRID_CACHE[key] = cached = (idx, counts)
    return cached


@register_stage("svd_denoiser")
@dataclass(frozen=True, kw_only=True)
class SvdDenoiser(BlockStage):
    """SVD/spectral-subspace denoising front-end stage.

    Attributes:
        block_samples: samples per independently denoised block. Larger
            blocks resolve closer spectral lines but cube the SVD cost.
        hankel_window: trajectory-matrix window ``L``; the subspace can
            hold at most ``L`` distinct complex exponentials. Blocks
            shorter than ``2 * hankel_window`` (the stream tail) use
            ``len // 2`` instead, so tiny tails still denoise.
        rank: keep exactly this many singular directions (``None`` to
            select by energy instead).
        energy_keep: when ``rank`` is ``None``, keep the smallest
            leading subspace holding at least this fraction of the total
            singular energy.

    Output dtype is float64/complex128 regardless of input width, so a
    mixed-precision stream cannot make batch and streaming disagree.
    """

    block_samples: int = 2048
    hankel_window: int = 64
    rank: Optional[int] = None
    energy_keep: float = 0.92

    def validate(self) -> "SvdDenoiser":
        if self.block_samples < 32:
            raise ConfigurationError(
                f"block_samples must be >= 32, got {self.block_samples}"
            )
        if self.hankel_window < 2:
            raise ConfigurationError(
                f"hankel_window must be >= 2, got {self.hankel_window}"
            )
        if 2 * self.hankel_window > self.block_samples:
            raise ConfigurationError(
                f"hankel_window {self.hankel_window} exceeds half the "
                f"block ({self.block_samples} samples)"
            )
        if self.rank is not None and self.rank < 1:
            raise ConfigurationError(
                f"rank must be >= 1 (or None), got {self.rank}"
            )
        if not 0 < self.energy_keep <= 1:
            raise ConfigurationError(
                f"energy_keep must be in (0, 1], got {self.energy_keep}"
            )
        return self

    def _select_rank(self, s: np.ndarray) -> int:
        if self.rank is not None:
            return min(self.rank, len(s))
        energy = s * s
        total = float(energy.sum())
        if total <= 0.0:
            return 1
        cum = np.cumsum(energy)
        return int(np.searchsorted(cum, self.energy_keep * total)) + 1

    def _process_block(self, block: np.ndarray) -> np.ndarray:
        out_dtype = (
            np.complex128 if np.iscomplexobj(block) else np.float64
        )
        x = np.asarray(block, dtype=out_dtype)
        n = len(x)
        window = min(self.hankel_window, n // 2)
        if window < 2:
            # A 1..3-sample tail has no trajectory structure; pass it
            # through (same path in batch and streaming).
            return x.copy() if x is block else x
        idx, counts = _hankel_grid(n, window)
        hankel = x[idx]
        u, s, vh = np.linalg.svd(hankel, full_matrices=False)
        r = self._select_rank(s)
        if r >= len(s):
            low_rank = hankel
        else:
            low_rank = (u[:, :r] * s[:r]) @ vh[:r]
        flat_idx = idx.ravel()
        if out_dtype is np.complex128:
            real = np.bincount(
                flat_idx, weights=low_rank.real.ravel(), minlength=n
            )
            imag = np.bincount(
                flat_idx, weights=low_rank.imag.ravel(), minlength=n
            )
            return (real + 1j * imag) / counts
        return np.bincount(
            flat_idx, weights=low_rank.ravel(), minlength=n
        ) / counts
