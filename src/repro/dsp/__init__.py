"""Composable signal-preprocessing front end (DESIGN.md D22).

The seam between capture and STFT: a tuple of
:class:`~repro.dsp.FrontendStage` objects on
:attr:`repro.EddieConfig.frontend` is applied to every signal the
pipeline touches -- training runs, batch monitoring, streaming sessions,
the fleet kernel, and served models (the chain rides in the model's
metadata and config fingerprint, so a served model reproduces its
training front end exactly).

Stages:

- :class:`SvdDenoiser` -- windowed-Hankel spectral-subspace denoising
  for harsh RF environments (arXiv 2212.05643),
- :class:`AgcStage` -- block automatic gain control (the stage form of
  the receiver's deprecated ``agc=True`` hook),
- :class:`FirGateStage` -- linear-phase FIR band gate, group-delay
  compensated (the receiver's decimation FIR, usable without
  decimating).
"""

from repro.dsp.stage import (
    AgcStage,
    BlockStage,
    FirGateStage,
    FrontendChain,
    FrontendStage,
    StreamingStage,
    apply_frontend,
    register_stage,
    stage_from_dict,
    stage_to_dict,
    validate_frontend,
)
from repro.dsp.svd import SvdDenoiser

__all__ = [
    "FrontendStage",
    "StreamingStage",
    "BlockStage",
    "FrontendChain",
    "AgcStage",
    "FirGateStage",
    "SvdDenoiser",
    "apply_frontend",
    "register_stage",
    "stage_to_dict",
    "stage_from_dict",
    "validate_frontend",
]
