"""Composable preprocessing stages between capture and STFT.

The EDDIE pipeline was hard-wired: whatever IQ the receiver produced went
straight into the STFT. Harsh RF environments (DESIGN.md D22) need a seam
there -- a denoiser, a gain normalizer, a band gate -- and the synthetic
fingerprint-transfer work will need calibration/warping stages on the
same seam. This module defines that seam:

- :class:`FrontendStage`: a frozen, keyword-only dataclass that is both
  the stage's configuration (fingerprintable by :mod:`repro.cache`,
  serializable into model metadata) and its implementation. The batch
  form is a pure function ``process(iq) -> iq``; :meth:`streaming`
  builds the stateful counterpart.
- :class:`StreamingStage`: the chunked form with
  ``feed/flush/export_state/restore_state``, following the
  :class:`~repro.core.stft.StreamingStft` idiom. Contract: for any
  chunking of a signal, ``concat(feed(c) for c in chunks) + flush()``
  is bit-identical to ``process(signal)``.
- :class:`FrontendChain`: the streaming composition of a stage tuple --
  what :class:`~repro.stream.StreamingMonitor` drives.
- A stage registry (:func:`stage_to_dict` / :func:`stage_from_dict`) so
  :mod:`repro.serialize` can embed the front-end chain in model
  metadata and reconstruct it exactly on load.

Stages preserve length and sample rate: a stage that buffers internally
(block stages, FIR group-delay compensation) releases every sample by
``flush`` time, so a chained stream emits exactly as many samples as it
was fed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ConfigurationError, SignalError
from repro.types import Signal

__all__ = [
    "FrontendStage",
    "StreamingStage",
    "BlockStage",
    "AgcStage",
    "FirGateStage",
    "FrontendChain",
    "apply_frontend",
    "register_stage",
    "stage_to_dict",
    "stage_from_dict",
    "validate_frontend",
]


class StreamingStage:
    """Stateful chunked counterpart of one :class:`FrontendStage`.

    Subclasses implement the four-method contract:

    - :meth:`feed` consumes one chunk and returns the processed samples
      released so far (possibly empty while the stage buffers);
    - :meth:`flush` releases everything still held, ending the stream;
    - :meth:`export_state` / :meth:`restore_state` round-trip the
      in-flight state (JSON-able meta dict + named ndarrays) so a
      checkpointed monitoring stream resumes bit-identically.

    An empty chunk must be returned unchanged without touching state --
    the chain relies on that when cascading flushes.
    """

    def feed(self, samples: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def flush(self) -> np.ndarray:
        raise NotImplementedError

    def export_state(self) -> tuple:
        raise NotImplementedError

    def restore_state(self, meta: dict, arrays: dict) -> None:
        raise NotImplementedError

    def resident_bytes(self) -> int:
        """Approximate bytes of buffered state (0 unless overridden)."""
        return 0


class FrontendStage:
    """Base of every preprocessing stage.

    Concrete stages are frozen keyword-only dataclasses (so the same
    object is the config: hashable, comparable, fingerprintable by
    :mod:`repro.cache` and serializable by the stage registry) that
    validate eagerly at construction, matching the
    :class:`~repro.core.model.EddieConfig` convention.
    """

    #: registry key; set by :func:`register_stage`.
    stage_type: str = ""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "FrontendStage":
        """Check every field; raise ConfigurationError on the first bad
        one. Returns ``self`` so it chains."""
        return self

    def process(self, iq: np.ndarray) -> np.ndarray:
        """Pure batch form: map the whole sample stream at once."""
        raise NotImplementedError

    def streaming(self) -> StreamingStage:
        """A fresh stateful stream applying this stage chunk by chunk."""
        raise NotImplementedError


def _check_chunk(samples: np.ndarray) -> np.ndarray:
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise SignalError(
            f"frontend stages take 1-D sample arrays, got shape "
            f"{samples.shape}"
        )
    return samples


# -- block machinery ----------------------------------------------------------


class BlockStage(FrontendStage):
    """A stage that maps fixed-size blocks independently.

    Blocks are anchored at the start of the stream (sample ``k`` belongs
    to block ``k // block_samples`` no matter how the stream was
    chunked), and the final partial block is processed like any other,
    so the streaming form is bit-identical to batch by construction:
    both call :meth:`_process_block` on exactly the same slices.

    Subclasses provide a ``block_samples`` field and
    :meth:`_process_block`.
    """

    def _process_block(self, block: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def process(self, iq: np.ndarray) -> np.ndarray:
        iq = _check_chunk(iq)
        if len(iq) == 0:
            return iq.copy()
        size = self.block_samples
        parts = [
            self._process_block(iq[start: start + size])
            for start in range(0, len(iq), size)
        ]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def streaming(self) -> "_BlockStreamer":
        return _BlockStreamer(self)


class _BlockStreamer(StreamingStage):
    """Streaming driver for any :class:`BlockStage`: buffer to full
    blocks, emit each through the stage's block function, flush the
    final partial block exactly as batch processes it."""

    def __init__(self, stage: BlockStage) -> None:
        self._stage = stage
        self._buffer: Optional[np.ndarray] = None

    def feed(self, samples: np.ndarray) -> np.ndarray:
        samples = _check_chunk(samples)
        if len(samples) == 0:
            return samples
        prev = self._buffer
        buf = (
            np.concatenate([prev, samples])
            if prev is not None and len(prev)
            else samples
        )
        size = self._stage.block_samples
        n_full = len(buf) // size
        self._buffer = buf[n_full * size:].copy()
        if n_full == 0:
            return buf[:0]
        parts = [
            self._stage._process_block(buf[i * size: (i + 1) * size])
            for i in range(n_full)
        ]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def flush(self) -> np.ndarray:
        buf = self._buffer
        self._buffer = None
        if buf is None or len(buf) == 0:
            return np.empty(0) if buf is None else buf
        return self._stage._process_block(buf)

    def export_state(self) -> tuple:
        meta = {"has_buffer": self._buffer is not None}
        arrays = {}
        if self._buffer is not None:
            arrays["buffer"] = self._buffer.copy()
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict) -> None:
        if bool(meta.get("has_buffer")):
            self._buffer = np.array(arrays["buffer"])
        else:
            self._buffer = None

    def resident_bytes(self) -> int:
        return 0 if self._buffer is None else self._buffer.nbytes


# -- registry -----------------------------------------------------------------

_STAGE_TYPES: Dict[str, Type[FrontendStage]] = {}


def register_stage(type_name: str):
    """Class decorator registering a stage under a serialization key."""

    def decorate(cls: Type[FrontendStage]) -> Type[FrontendStage]:
        if not is_dataclass(cls):
            raise ConfigurationError(
                f"stage {cls.__name__} must be a dataclass to register"
            )
        cls.stage_type = type_name
        _STAGE_TYPES[type_name] = cls
        return cls

    return decorate


def stage_to_dict(stage: FrontendStage) -> dict:
    """JSON-able description of one stage: its type key plus fields."""
    if not isinstance(stage, FrontendStage) or not stage.stage_type:
        raise ConfigurationError(
            f"{type(stage).__name__} is not a registered frontend stage"
        )
    desc = {"type": stage.stage_type}
    for f in fields(stage):
        desc[f.name] = getattr(stage, f.name)
    return desc


def stage_from_dict(desc: dict) -> FrontendStage:
    """Reconstruct a stage written by :func:`stage_to_dict`.

    Raises :class:`ConfigurationError` for unknown stage types or
    invalid fields -- a model file naming a stage this build does not
    know must refuse to load rather than silently drop the stage.
    """
    if not isinstance(desc, dict) or "type" not in desc:
        raise ConfigurationError(f"malformed frontend stage entry: {desc!r}")
    cls = _STAGE_TYPES.get(desc["type"])
    if cls is None:
        raise ConfigurationError(
            f"unknown frontend stage type {desc['type']!r} "
            f"(known: {sorted(_STAGE_TYPES)})"
        )
    kwargs = {k: v for k, v in desc.items() if k != "type"}
    known = {f.name for f in fields(cls)}
    unknown = set(kwargs) - known
    if unknown:
        raise ConfigurationError(
            f"frontend stage {desc['type']!r} has no field(s) "
            f"{sorted(unknown)}"
        )
    return cls(**kwargs)


def validate_frontend(stages: Sequence[FrontendStage]) -> None:
    """Validate a frontend chain spec (every entry a registered stage)."""
    for stage in stages:
        if not isinstance(stage, FrontendStage):
            raise ConfigurationError(
                f"frontend entries must be FrontendStage instances, got "
                f"{type(stage).__name__}"
            )
        stage.validate()


def apply_frontend(
    stages: Sequence[FrontendStage], signal: Signal
) -> Signal:
    """Batch-apply a stage chain to a captured signal."""
    if not stages:
        return signal
    samples = signal.samples
    for stage in stages:
        samples = stage.process(samples)
    return Signal(samples, signal.sample_rate, signal.t0)


# -- chain --------------------------------------------------------------------


class FrontendChain(StreamingStage):
    """The streaming composition of a frontend stage tuple.

    Feeding chains each chunk through every stage's stream in order;
    flushing cascades: each stage's tail is fed through the stages after
    it before they flush, so the chain's total output is bit-identical
    to batch-processing the whole stream through
    :func:`apply_frontend`.
    """

    def __init__(self, stages: Sequence[FrontendStage]) -> None:
        validate_frontend(stages)
        if not stages:
            raise ConfigurationError("FrontendChain needs at least one stage")
        self.stages: Tuple[FrontendStage, ...] = tuple(stages)
        self._streams: List[StreamingStage] = [
            stage.streaming() for stage in self.stages
        ]

    def feed(self, samples: np.ndarray) -> np.ndarray:
        out = _check_chunk(samples)
        for stream in self._streams:
            if len(out) == 0:
                break
            out = stream.feed(out)
        return out

    def flush(self) -> np.ndarray:
        pending = np.empty(0)
        for stream in self._streams:
            fed = stream.feed(pending) if len(pending) else pending
            tail = stream.flush()
            if len(fed) and len(tail):
                pending = np.concatenate([fed, tail])
            else:
                pending = tail if len(tail) else fed
        return pending

    def export_state(self) -> tuple:
        meta: dict = {"stages": []}
        arrays: dict = {}
        for i, stream in enumerate(self._streams):
            s_meta, s_arrays = stream.export_state()
            meta["stages"].append(s_meta)
            for name, value in s_arrays.items():
                arrays[f"s{i}.{name}"] = value
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict) -> None:
        stage_metas = meta.get("stages", [])
        if len(stage_metas) != len(self._streams):
            raise ConfigurationError(
                f"frontend snapshot has {len(stage_metas)} stage(s), "
                f"this chain has {len(self._streams)}"
            )
        for i, (stream, s_meta) in enumerate(
            zip(self._streams, stage_metas)
        ):
            prefix = f"s{i}."
            s_arrays = {
                name[len(prefix):]: value
                for name, value in arrays.items()
                if name.startswith(prefix)
            }
            stream.restore_state(s_meta, s_arrays)

    def resident_bytes(self) -> int:
        return sum(stream.resident_bytes() for stream in self._streams)


# -- concrete stages ----------------------------------------------------------


@register_stage("agc")
@dataclass(frozen=True, kw_only=True)
class AgcStage(BlockStage):
    """Block automatic gain control: scale each block's RMS to a target.

    The stage form of the receiver's legacy ``agc=True`` hook (which is
    now deprecation-aliased to this): each ``block_samples``-long block
    is rescaled so its RMS level hits ``target`` -- the ADC sweet spot a
    cheap SDR's AGC chases. With the receiver defaults
    (``adc_full_scale=4.0``) the equivalent target is ``2.0``.
    """

    block_samples: int = 4096
    target: float = 2.0

    def validate(self) -> "AgcStage":
        if self.block_samples < 2:
            raise ConfigurationError(
                f"block_samples must be >= 2, got {self.block_samples}"
            )
        if self.target <= 0:
            raise ConfigurationError(
                f"target must be positive, got {self.target}"
            )
        return self

    def _process_block(self, block: np.ndarray) -> np.ndarray:
        rms = float(np.sqrt(np.mean(np.abs(block) ** 2)))
        if rms > 0:
            return block * (self.target / rms)
        return block.copy()


@register_stage("fir_gate")
@dataclass(frozen=True, kw_only=True)
class FirGateStage(FrontendStage):
    """Linear-phase FIR low-pass gate, group-delay compensated.

    The stage form of the receiver's decimation FIR gate (same firwin
    design, same delay compensation), usable without decimating: it
    band-limits the stream to the inner ``cutoff`` fraction of Nyquist
    so out-of-band interferers never reach the STFT. Length-preserving:
    batch pads ``(taps-1)/2`` zeros through the filter and drops the
    same number of leading outputs; the streaming form carries the
    filter state across chunks and drains the pad at flush, so both
    emit exactly one output sample per input sample.
    """

    cutoff: float
    taps: int = 65
    block_samples: int = 4096

    def validate(self) -> "FirGateStage":
        if not 0 < self.cutoff < 1:
            raise ConfigurationError(
                f"cutoff must be in (0, 1) (fraction of Nyquist), got "
                f"{self.cutoff}"
            )
        if self.taps < 3 or self.taps % 2 == 0:
            raise ConfigurationError(
                f"taps must be an odd integer >= 3, got {self.taps}"
            )
        if self.block_samples < self.taps:
            raise ConfigurationError(
                f"block_samples must be >= taps ({self.taps}), got "
                f"{self.block_samples}"
            )
        return self

    def _taps(self) -> np.ndarray:
        return sp_signal.firwin(self.taps, self.cutoff)

    def process(self, iq: np.ndarray) -> np.ndarray:
        iq = _check_chunk(iq)
        if len(iq) == 0:
            return iq.copy()
        stream = self.streaming()
        head = stream.feed(iq)
        tail = stream.flush()
        if not len(tail):
            return head
        return np.concatenate([head, tail]) if len(head) else tail

    def streaming(self) -> "_FirGateStreamer":
        return _FirGateStreamer(self)


class _FirGateStreamer(StreamingStage):
    """Streaming FIR on a fixed block grid.

    ``lfilter`` with a carried ``zi`` is mathematically an exact
    chunk-wise decomposition of the batch filter, but scipy's rounding
    differs in the last bit depending on where the call boundaries fall.
    Pinning the calls to a fixed ``block_samples`` grid anchored at the
    stream start makes the call sequence -- and therefore every output
    bit -- independent of how the caller chunked the stream; the batch
    :meth:`FirGateStage.process` drives this same streamer, so batch and
    streaming are identical by construction. The group-delay pad is
    handled as in the receiver: the first ``(taps-1)/2`` outputs are
    discarded and ``flush`` pushes that many zeros through to release
    the final samples, keeping the stage length-preserving.
    """

    def __init__(self, stage: FirGateStage) -> None:
        self._stage = stage
        self._taps = stage._taps()
        self._delay = (len(self._taps) - 1) // 2
        self._zi: Optional[np.ndarray] = None
        self._to_skip = self._delay
        self._in_dtype: Optional[np.dtype] = None
        self._buffer: Optional[np.ndarray] = None

    def _run(self, samples: np.ndarray) -> np.ndarray:
        """One lfilter call with carried state plus delay-skip logic."""
        if self._zi is None:
            self._in_dtype = samples.dtype
            zi_dtype = np.result_type(samples.dtype, np.float64)
            self._zi = np.zeros(len(self._taps) - 1, dtype=zi_dtype)
        out, self._zi = sp_signal.lfilter(
            self._taps, 1.0, samples, zi=self._zi
        )
        if self._to_skip:
            skip = min(self._to_skip, len(out))
            self._to_skip -= skip
            out = out[skip:]
        return out

    def feed(self, samples: np.ndarray) -> np.ndarray:
        samples = _check_chunk(samples)
        if len(samples) == 0:
            return samples
        prev = self._buffer
        buf = (
            np.concatenate([prev, samples])
            if prev is not None and len(prev)
            else samples
        )
        size = self._stage.block_samples
        n_full = len(buf) // size
        self._buffer = buf[n_full * size:].copy()
        if n_full == 0:
            return buf[:0]
        parts = [
            self._run(buf[i * size: (i + 1) * size]) for i in range(n_full)
        ]
        parts = [p for p in parts if len(p)]
        if not parts:
            return buf[:0]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def flush(self) -> np.ndarray:
        buf = self._buffer
        self._buffer = None
        parts = []
        if buf is not None and len(buf):
            parts.append(self._run(buf))
        if self._zi is not None:
            pad = np.zeros(self._delay, dtype=self._in_dtype)
            parts.append(self._run(pad))
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.empty(0)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def export_state(self) -> tuple:
        meta = {
            "to_skip": self._to_skip,
            "has_zi": self._zi is not None,
            "has_buffer": self._buffer is not None,
            "in_dtype": (
                None if self._in_dtype is None else np.dtype(self._in_dtype).str
            ),
        }
        arrays = {}
        if self._zi is not None:
            arrays["zi"] = self._zi.copy()
        if self._buffer is not None:
            arrays["buffer"] = self._buffer.copy()
        return meta, arrays

    def restore_state(self, meta: dict, arrays: dict) -> None:
        self._to_skip = int(meta["to_skip"])
        if bool(meta.get("has_zi")):
            self._zi = np.array(arrays["zi"])
            self._in_dtype = np.dtype(meta["in_dtype"])
        else:
            self._zi = None
            self._in_dtype = None
        self._buffer = (
            np.array(arrays["buffer"]) if bool(meta.get("has_buffer")) else None
        )

    def resident_bytes(self) -> int:
        total = 0 if self._zi is None else self._zi.nbytes
        if self._buffer is not None:
            total += self._buffer.nbytes
        return total
