"""Vectorized composition of loop executions from memoized path schedules.

This module implements design decision D1 (DESIGN.md): rather than
interpreting every dynamic instruction, each distinct control path through a
loop body is scheduled cycle-accurately *once* (per OOO schedule variant),
yielding a per-cycle power waveform; a loop execution is then composed by
sampling a path variant per iteration, appending stochastic stall cycles for
cache misses and branch mispredictions, and scattering the memoized
waveforms into one long per-cycle power array -- all vectorized with numpy.

The per-iteration *period* (which sets the loop's spectral peak) and its
*variance* (which sets the STS spread EDDIE's statistics must absorb) are
therefore cycle-accurate at the path level, at roughly 1000x the speed of an
instruction-by-instruction interpreter.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.branch import two_bit_mispredict_rate
from repro.arch.cache import stream_miss_profile
from repro.arch.config import CoreConfig
from repro.arch.pipeline import PathSchedule, schedule_path
from repro.arch.power import PowerModel
from repro.cfg.loops import Loop, LoopForest
from repro.errors import SimulationError
from repro.obs import OBS, record_count
from repro.programs.ir import (
    Branch,
    Halt,
    Instr,
    Jump,
    LoopBack,
    OpClass,
    Program,
)

__all__ = ["CompositionEngine", "TraceBuilder", "LoopExecution", "Variant"]

# Number of perturbed schedule variants kept per path on OOO cores.
_OOO_VARIANTS = 4
# Fraction of a miss penalty an OOO core cannot hide with independent work.
_OOO_MISS_EXPOSURE = 0.45
# Mean dwell (iterations) of an OOO core in one schedule steady-state.
# Dynamic schedules exhibit hysteresis: replay/aliasing effects persist
# over stretches comparable to one STFT window, so each window's dominant
# schedule differs while long-run proportions stay stationary -- this is
# what makes OOO cores need larger K-S groups in the paper (Section 5.3,
# Figure 4) without destabilizing the reference distribution itself.
_OOO_VARIANT_DWELL = 75
# Iterations composed per numpy chunk (bounds peak memory).
_CHUNK_ITERS = 65536


class TraceBuilder:
    """Accumulates per-cycle power chunks and bins them into samples.

    The paper's SESC setup samples the power signal every 20 cycles; the
    builder performs that decimation streamingly (mean power per
    ``cycles_per_sample`` bucket) so full-run cycle arrays never exist.
    """

    def __init__(self, cycles_per_sample: int) -> None:
        if cycles_per_sample < 1:
            raise SimulationError("cycles_per_sample must be >= 1")
        self.cycles_per_sample = cycles_per_sample
        self._carry = np.empty(0)
        self._sample_chunks: List[np.ndarray] = []
        self.total_cycles = 0

    def add_cycles(self, power: np.ndarray) -> None:
        """Append a chunk of per-cycle power values."""
        self.total_cycles += len(power)
        cps = self.cycles_per_sample
        if len(self._carry):
            power = np.concatenate([self._carry, power])
        n_full = len(power) // cps
        if n_full:
            full = power[: n_full * cps].reshape(n_full, cps)
            self._sample_chunks.append(full.mean(axis=1))
        self._carry = power[n_full * cps:]

    def add_constant(self, level: float, n_cycles: int) -> None:
        """Append ``n_cycles`` cycles at constant power ``level``."""
        self.add_cycles(np.full(n_cycles, level))

    def samples(self) -> np.ndarray:
        """All complete samples binned so far (drops a partial tail bucket)."""
        if not self._sample_chunks:
            return np.empty(0)
        return np.concatenate(self._sample_chunks)


@dataclass(frozen=True)
class Variant:
    """One memoized execution variant of a straight-line path.

    Attributes:
        waveform: per-cycle power, assuming L1 hits and correct prediction.
        cycles: base length.
        instr_count: dynamic instructions in the path.
        mem_groups: (accesses, l1_miss_prob, l2_miss_prob) per stream class.
        br_groups: (branches, mispredict_rate) per rate class.
        prob: selection probability among its loop's variants.
    """

    waveform: np.ndarray
    cycles: int
    instr_count: int
    mem_groups: Tuple[Tuple[int, float, float], ...]
    br_groups: Tuple[Tuple[int, float], ...]
    prob: float


# Path elements produced by loop-body enumeration.
@dataclass(frozen=True)
class _Segment:
    instrs: Tuple[Instr, ...]
    branch_probs: Tuple[float, ...]  # taken-direction prob of each cond branch


@dataclass(frozen=True)
class _ChildLoop:
    header: str


@dataclass(frozen=True)
class _LoopPath:
    prob: float
    elements: Tuple[Union[_Segment, _ChildLoop], ...]
    exits_loop: bool
    exit_target: Optional[str]


@dataclass
class LoopExecution:
    """Result of rendering one loop-nest execution."""

    exit_block: str
    iterations: int
    instr_count: int
    injected_instr_count: int


class CompositionEngine:
    """Renders loop-nest executions into a :class:`TraceBuilder`.

    One engine instance serves one (program, core) pair and memoizes path
    schedules across runs. Per-run state (inputs, rng) is passed to
    :meth:`run_nest`.
    """

    def __init__(
        self,
        program: Program,
        core: CoreConfig,
        forest: LoopForest,
        power_model: Optional[PowerModel] = None,
    ) -> None:
        self.program = program
        self.core = core
        self.forest = forest
        self.power = power_model or PowerModel(core)
        self._variant_cache: Dict[Tuple, Tuple[Variant, ...]] = {}
        self._path_cache: Dict[Tuple, Tuple] = {}
        # Injected instructions per loop header: (instrs, contamination).
        self.loop_injections: Dict[str, Tuple[Tuple[Instr, ...], float]] = {}

    # -- public API ----------------------------------------------------------

    def run_nest(
        self,
        loop: Loop,
        inputs: Mapping[str, float],
        rng: np.random.Generator,
        builder: TraceBuilder,
    ) -> LoopExecution:
        """Render one full execution of a top-level loop nest."""
        if OBS.enabled:
            record_count("arch.engine", "nest_compositions")
        return self._run_loop(loop, inputs, rng, builder)

    def run_straightline(
        self,
        instrs: Sequence[Instr],
        branch_probs: Sequence[float],
        rng: np.random.Generator,
        builder: TraceBuilder,
    ) -> int:
        """Render one execution of a straight-line stretch; returns instrs."""
        if not instrs:
            return 0
        segment = _Segment(tuple(instrs), tuple(branch_probs))
        variants = self._compile_segment(segment, prob=1.0)
        idx = int(rng.integers(len(variants)))
        variant = variants[idx]
        extra, energy = self._sample_extras(variant, 1, rng)
        chunk = variant.waveform
        if extra[0] > 0:
            tail = np.full(int(extra[0]), self.power.stall_power)
            tail[0] += energy[0]
            chunk = np.concatenate([chunk, tail])
        builder.add_cycles(chunk)
        return variant.instr_count

    def run_repeated(
        self,
        instrs: Sequence[Instr],
        n: int,
        rng: np.random.Generator,
        builder: TraceBuilder,
    ) -> int:
        """Render ``n`` back-to-back executions of a straight-line body.

        Used for burst injections (e.g. the paper's ~476k-instruction
        shellcode modelled as a spin loop); vectorized like a leaf loop.
        """
        if n <= 0 or not instrs:
            return 0
        path = _LoopPath(
            prob=1.0,
            elements=(_Segment(tuple(instrs), ()),),
            exits_loop=False,
            exit_target=None,
        )
        total, _ = self._render_leaf([path], n, rng, builder, injection=None)
        return total

    # -- loop rendering --------------------------------------------------------

    def _run_loop(
        self,
        loop: Loop,
        inputs: Mapping[str, float],
        rng: np.random.Generator,
        builder: TraceBuilder,
    ) -> LoopExecution:
        paths, trips_spec, counted_exit = self._enumerate_paths(loop, inputs)
        iter_paths = [p for p in paths if not p.exits_loop]
        exit_paths = [p for p in paths if p.exits_loop]
        if not iter_paths:
            raise SimulationError(
                f"loop {loop.header!r} has no iterating path"
            )

        max_trips: Optional[int] = None
        if trips_spec is not None:
            max_trips = self.program.resolve_trips(trips_spec, inputs)

        p_exit = sum(p.prob for p in exit_paths)
        if max_trips is None and p_exit <= 0:
            raise SimulationError(
                f"loop {loop.header!r} has neither a trip count nor an exit path"
            )

        # Number of completed iterations before leaving the loop.
        if p_exit > 0:
            n_iters = int(rng.geometric(p_exit))
            if max_trips is not None:
                n_iters = min(n_iters, max_trips)
            exited_early = max_trips is None or n_iters < max_trips
        else:
            n_iters = max_trips  # type: ignore[assignment]
            exited_early = False

        injection = self.loop_injections.get(loop.header)
        has_children = any(
            any(isinstance(el, _ChildLoop) for el in p.elements) for p in iter_paths
        )

        total_instrs = 0
        injected_instrs = 0
        if has_children:
            total_instrs, injected_instrs = self._render_nested(
                iter_paths, n_iters, inputs, rng, builder, injection
            )
        else:
            total_instrs, injected_instrs = self._render_leaf(
                iter_paths, n_iters, rng, builder, injection
            )

        # Leave the loop: either through a sampled exit path or the counted
        # exit edge.
        if exited_early and exit_paths:
            probs = np.array([p.prob for p in exit_paths])
            probs = probs / probs.sum()
            chosen = exit_paths[int(rng.choice(len(exit_paths), p=probs))]
            total_instrs += self._render_once(chosen, inputs, rng, builder)
            exit_block = chosen.exit_target
        else:
            exit_block = counted_exit
        if exit_block is None:
            raise SimulationError(f"loop {loop.header!r} has no exit target")

        return LoopExecution(
            exit_block=exit_block,
            iterations=n_iters,
            instr_count=total_instrs,
            injected_instr_count=injected_instrs,
        )

    def _render_leaf(
        self,
        iter_paths: List[_LoopPath],
        n_iters: int,
        rng: np.random.Generator,
        builder: TraceBuilder,
        injection: Optional[Tuple[Tuple[Instr, ...], float]],
    ) -> Tuple[int, int]:
        """Vectorized rendering of a child-free loop's iterations.

        Control-path (and injected/clean) choice is i.i.d. per iteration;
        on OOO cores the *schedule variant* within the chosen path follows
        a sticky Markov chain with mean dwell ``_OOO_VARIANT_DWELL`` (see
        that constant's comment).
        """
        variants = self._iteration_variants(iter_paths, injection)
        k_variants = _OOO_VARIANTS if self.core.is_ooo else 1
        n_families = len(variants) // k_variants
        family_probs = np.array(
            [variants[f * k_variants].prob * k_variants for f in range(n_families)]
        )
        family_probs = family_probs / family_probs.sum()
        base_len = np.array([v.cycles for v in variants])
        instr_counts = np.array([v.instr_count for v in variants])
        n_clean_variants = getattr(variants, "n_clean", len(variants))

        total_instrs = 0
        injected_instrs = 0
        injected_len = len(injection[0]) if injection else 0
        current_variant = int(rng.integers(k_variants))
        remaining = n_iters
        while remaining > 0:
            chunk = min(remaining, _CHUNK_ITERS)
            remaining -= chunk
            family_idx = rng.choice(n_families, size=chunk, p=family_probs)
            if k_variants > 1:
                schedule_idx, current_variant = _sticky_stream(
                    chunk, k_variants, current_variant,
                    1.0 / _OOO_VARIANT_DWELL, rng,
                )
            else:
                schedule_idx = np.zeros(chunk, dtype=np.int64)
            idx = family_idx * k_variants + schedule_idx
            extra = np.zeros(chunk, dtype=np.int64)
            energy = np.zeros(chunk)
            for v, variant in enumerate(variants):
                mask = idx == v
                count = int(mask.sum())
                if not count:
                    continue
                e, en = self._sample_extras(variant, count, rng)
                extra[mask] = e
                energy[mask] = en
            lengths = base_len[idx] + extra
            offsets = np.zeros(chunk, dtype=np.int64)
            np.cumsum(lengths[:-1], out=offsets[1:])
            total = int(lengths.sum())
            power = np.full(total, self.power.stall_power)
            for v, variant in enumerate(variants):
                starts = offsets[idx == v]
                if not len(starts):
                    continue
                positions = (starts[:, None] + np.arange(variant.cycles)).ravel()
                power[positions] = np.tile(variant.waveform, len(starts))
            gap_mask = extra > 0
            if gap_mask.any():
                gap_starts = (offsets + base_len[idx])[gap_mask]
                np.add.at(power, gap_starts, energy[gap_mask])
            builder.add_cycles(power)
            chunk_instrs = int(instr_counts[idx].sum())
            total_instrs += chunk_instrs
            if injection is not None:
                n_injected_iters = int((idx >= n_clean_variants).sum())
                injected_instrs += n_injected_iters * injected_len
        return total_instrs, injected_instrs

    def _render_nested(
        self,
        iter_paths: List[_LoopPath],
        n_iters: int,
        inputs: Mapping[str, float],
        rng: np.random.Generator,
        builder: TraceBuilder,
        injection: Optional[Tuple[Tuple[Instr, ...], float]],
    ) -> Tuple[int, int]:
        """Iteration-by-iteration rendering of a loop containing child loops.

        Outer loops of a nest typically run a few thousand iterations at
        most, so a Python-level loop is acceptable; the child loops inside
        are rendered with the vectorized leaf path.
        """
        probs = np.array([p.prob for p in iter_paths])
        probs = probs / probs.sum()
        total_instrs = 0
        injected_instrs = 0
        contamination = injection[1] if injection else 0.0
        path_indices = rng.choice(len(iter_paths), size=n_iters, p=probs)
        for path_idx in path_indices:
            path = iter_paths[int(path_idx)]
            inject_here = injection is not None and rng.random() < contamination
            last_segment_idx = max(
                (i for i, el in enumerate(path.elements) if isinstance(el, _Segment)),
                default=-1,
            )
            for el_idx, element in enumerate(path.elements):
                if isinstance(element, _Segment):
                    segment = element
                    if inject_here and el_idx == last_segment_idx:
                        segment = _Segment(
                            element.instrs + injection[0], element.branch_probs
                        )
                        injected_instrs += len(injection[0])
                    total_instrs += self.run_straightline(
                        segment.instrs, segment.branch_probs, rng, builder
                    )
                else:
                    child = self.forest.by_header(element.header)
                    execution = self._run_loop(child, inputs, rng, builder)
                    total_instrs += execution.instr_count
                    injected_instrs += execution.injected_instr_count
        return total_instrs, injected_instrs

    def _render_once(
        self,
        path: _LoopPath,
        inputs: Mapping[str, float],
        rng: np.random.Generator,
        builder: TraceBuilder,
    ) -> int:
        """Render a single traversal of one path (used for exit paths)."""
        instrs = 0
        for element in path.elements:
            if isinstance(element, _Segment):
                instrs += self.run_straightline(
                    element.instrs, element.branch_probs, rng, builder
                )
            else:
                child = self.forest.by_header(element.header)
                execution = self._run_loop(child, inputs, rng, builder)
                instrs += execution.instr_count
        return instrs

    # -- path enumeration -------------------------------------------------------

    def _enumerate_paths(
        self, loop: Loop, inputs: Mapping[str, float]
    ) -> Tuple[List[_LoopPath], Optional[object], Optional[str]]:
        """Enumerate control paths of one iteration of ``loop``.

        Walks the loop body from the header. A path ends when it returns to
        the header (an iterating path) or leaves the loop (an exit path).
        Child loops encountered are collapsed into :class:`_ChildLoop`
        elements and resumed at their unique exit target.

        Returns (paths, trips_spec, counted_exit_target); the trip spec
        comes from the loop's LoopBack latch if it has one. Results are
        memoized per (loop, resolved inputs): deeply nested loops would
        otherwise re-enumerate on every execution of the inner loop.
        """
        cache_key = (loop.header, tuple(sorted(inputs.items())))
        cached = self._path_cache.get(cache_key)
        if cached is not None:
            return cached

        program = self.program
        paths: List[_LoopPath] = []
        trips_spec: List[object] = []
        counted_exit: List[str] = []

        def walk(
            block_name: str,
            prob: float,
            elements: List,
            current: List[Instr],
            branch_probs: List[float],
            depth: int,
        ) -> None:
            if depth > 64:
                raise SimulationError(
                    f"path enumeration in loop {loop.header!r} exceeded depth "
                    f"64; the loop body is too branchy for the engine"
                )
            child = self._child_loop_at(loop, block_name)
            if child is not None:
                if current:
                    elements = elements + [
                        _Segment(tuple(current), tuple(branch_probs))
                    ]
                elements = elements + [_ChildLoop(child.header)]
                exit_target = self._unique_exit(child, inputs)
                if exit_target == loop.header:
                    paths.append(_LoopPath(prob, tuple(elements), False, None))
                elif exit_target in loop.blocks:
                    walk(exit_target, prob, elements, [], [], depth + 1)
                else:
                    paths.append(
                        _LoopPath(prob, tuple(elements), True, exit_target)
                    )
                return

            block = program.block(block_name)
            current = current + list(block.instrs)
            branch_probs = list(branch_probs)
            term = block.terminator

            def finish(exits: bool, target: Optional[str]) -> None:
                elems = list(elements)
                if current:
                    elems.append(_Segment(tuple(current), tuple(branch_probs)))
                paths.append(_LoopPath(prob, tuple(elems), exits, target))

            if isinstance(term, Halt):
                raise SimulationError(
                    f"block {block_name!r} halts inside loop {loop.header!r}"
                )
            if isinstance(term, LoopBack):
                if term.header == loop.header:
                    # The canonical latch: ends an iteration.
                    trips_spec.append(term.trips)
                    counted_exit.append(term.exit)
                    current.append(Instr(OpClass.BRANCH))
                    finish(False, None)
                    return
                raise SimulationError(
                    f"block {block_name!r} has a LoopBack to {term.header!r}, "
                    f"which is not the enclosing loop header {loop.header!r}"
                )
            if isinstance(term, Jump):
                current.append(Instr(OpClass.BRANCH))
                if term.target == loop.header:
                    finish(False, None)
                elif term.target in loop.blocks:
                    walk(term.target, prob, elements, current, branch_probs, depth + 1)
                else:
                    finish(True, term.target)
                return
            if isinstance(term, Branch):
                p_taken = program.resolve_prob(term.taken_prob, inputs)
                current.append(Instr(OpClass.BRANCH))
                for target, p_dir in ((term.taken, p_taken), (term.not_taken, 1 - p_taken)):
                    if p_dir <= 0:
                        continue
                    bp = branch_probs + [p_taken]
                    if target == loop.header:
                        elems = list(elements)
                        elems.append(_Segment(tuple(current), tuple(bp)))
                        paths.append(
                            _LoopPath(prob * p_dir, tuple(elems), False, None)
                        )
                    elif target in loop.blocks:
                        walk(target, prob * p_dir, elements, list(current), bp, depth + 1)
                    else:
                        elems = list(elements)
                        elems.append(_Segment(tuple(current), tuple(bp)))
                        paths.append(
                            _LoopPath(prob * p_dir, tuple(elems), True, target)
                        )
                return
            raise SimulationError(f"unhandled terminator {term!r}")

        walk(loop.header, 1.0, [], [], [], 0)

        if trips_spec:
            spec = trips_spec[0]
            exit_target = counted_exit[0]
        else:
            spec, exit_target = None, None
        result = (paths, spec, exit_target)
        self._path_cache[cache_key] = result
        return result

    def _child_loop_at(self, loop: Loop, block_name: str) -> Optional[Loop]:
        """The immediate child loop headed at ``block_name``, if any."""
        if block_name == loop.header:
            return None
        for child in loop.children:
            if child.header == block_name:
                return child
        return None

    def _unique_exit(self, child: Loop, inputs: Mapping[str, float]) -> str:
        """The single block a child loop continues at after finishing."""
        targets = set()
        for block_name in child.blocks:
            term = self.program.block(block_name).terminator
            if isinstance(term, LoopBack) and term.header == child.header:
                targets.add(term.exit)
            elif isinstance(term, (Jump, Branch)):
                for succ in self.program.block(block_name).successors():
                    if succ not in child.blocks:
                        targets.add(succ)
        if len(targets) != 1:
            raise SimulationError(
                f"child loop {child.header!r} must have exactly one exit "
                f"target; found {sorted(targets)}"
            )
        return targets.pop()

    # -- compilation --------------------------------------------------------------

    def _iteration_variants(
        self,
        iter_paths: List[_LoopPath],
        injection: Optional[Tuple[Tuple[Instr, ...], float]],
    ) -> List[Variant]:
        """Compile all iteration variants of a leaf loop, injection included.

        With a loop-body injection at contamination rate c, each iteration
        independently executes the injected variant with probability c
        (Section 5.4 of the paper); this is expressed by splitting every
        path's probability mass between its clean and injected variants.
        """
        contamination = injection[1] if injection else 0.0
        variants: List[Variant] = []
        for path in iter_paths:
            segment = self._single_segment(path)
            for variant in self._compile_segment(segment, path.prob * (1 - contamination)):
                if variant.prob > 0:
                    variants.append(variant)
        n_clean = len(variants)
        if injection is not None and contamination > 0:
            for path in iter_paths:
                segment = self._single_segment(path)
                injected = _Segment(segment.instrs + injection[0], segment.branch_probs)
                for variant in self._compile_segment(injected, path.prob * contamination):
                    variants.append(variant)
        result = variants
        # Stash the clean/injected boundary for the renderer.
        result_list = _VariantList(result)
        result_list.n_clean = n_clean
        return result_list

    @staticmethod
    def _single_segment(path: _LoopPath) -> _Segment:
        if len(path.elements) != 1 or not isinstance(path.elements[0], _Segment):
            raise SimulationError("leaf rendering requires single-segment paths")
        return path.elements[0]

    def _compile_segment(self, segment: _Segment, prob: float) -> List[Variant]:
        """Compile a segment into its schedule variants (memoized)."""
        n_variants = _OOO_VARIANTS if self.core.is_ooo else 1
        key = (segment.instrs, segment.branch_probs)
        cached = self._variant_cache.get(key)
        if cached is None:
            base = schedule_path(segment.instrs, self.core)
            compiled = [self._make_variant(segment, base)]
            for k in range(1, n_variants):
                rng = np.random.default_rng(_stable_seed(key) + k)
                schedule = schedule_path(
                    segment.instrs, self.core, rng, expected_cycles=base.cycles
                )
                compiled.append(self._make_variant(segment, schedule))
            cached = tuple(compiled)
            self._variant_cache[key] = cached
        return [
            Variant(
                waveform=v.waveform,
                cycles=v.cycles,
                instr_count=v.instr_count,
                mem_groups=v.mem_groups,
                br_groups=v.br_groups,
                prob=prob / len(cached),
            )
            for v in cached
        ]

    def _make_variant(self, segment: _Segment, schedule: PathSchedule) -> Variant:
        waveform = self.power.waveform(schedule)
        mem_groups: Dict[Tuple[float, float], int] = {}
        for instr in segment.instrs:
            if instr.mem is None:
                continue
            profile = stream_miss_profile(instr.mem, self.core.mem)
            key = (profile.l1_miss, profile.l2_miss)
            if key == (0.0, 0.0):
                continue
            mem_groups[key] = mem_groups.get(key, 0) + 1
        br_groups: Dict[float, int] = {}
        for p_taken in segment.branch_probs:
            rate = two_bit_mispredict_rate(round(p_taken, 6))
            if rate > 0:
                br_groups[rate] = br_groups.get(rate, 0) + 1
        return Variant(
            waveform=waveform,
            cycles=schedule.cycles,
            instr_count=len(segment.instrs),
            mem_groups=tuple((n, k[0], k[1]) for k, n in mem_groups.items()),
            br_groups=tuple((n, rate) for rate, n in br_groups.items()),
            prob=1.0,
        )

    # -- stochastic extras ---------------------------------------------------------

    def _sample_extras(
        self, variant: Variant, size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample per-iteration stall cycles and refill energy.

        Cache-miss penalties are partially hidden on OOO cores (independent
        work continues under a miss); mispredict penalties are exposed on
        both core kinds.
        """
        mem = self.core.mem
        l2_extra = mem.l2.hit_latency - mem.l1.hit_latency
        dram_extra = mem.dram_latency - mem.l2.hit_latency
        exposure = _OOO_MISS_EXPOSURE if self.core.is_ooo else 1.0

        extra = np.zeros(size, dtype=np.float64)
        energy = np.zeros(size)
        for count, l1p, l2p in variant.mem_groups:
            l1_misses = rng.binomial(count, l1p, size)
            extra += l1_misses * l2_extra * exposure
            energy += l1_misses * self.power.params.l2_access
            if l2p > 0:
                l2_misses = rng.binomial(l1_misses, l2p)
                extra += l2_misses * dram_extra * exposure
                energy += l2_misses * self.power.params.dram_access
        penalty = self.core.mispredict_penalty
        for count, rate in variant.br_groups:
            mispredicts = rng.binomial(count, rate, size)
            extra += mispredicts * penalty
        return np.round(extra).astype(np.int64), energy


class _VariantList(list):
    """A list of variants carrying the clean/injected split index."""

    n_clean: int


def _sticky_stream(
    n: int,
    n_states: int,
    initial: int,
    switch_prob: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, int]:
    """A length-n Markov stream over ``n_states`` with sticky dwell.

    Each step keeps the current state with probability ``1 - switch_prob``
    and otherwise jumps to a uniformly random state. Returns the stream
    and the final state (for cross-chunk continuity).
    """
    switches = rng.random(n) < switch_prob
    new_states = rng.integers(0, n_states, size=n)
    positions = np.arange(n)
    last_switch = np.where(switches, positions, -1)
    np.maximum.accumulate(last_switch, out=last_switch)
    stream = np.where(last_switch >= 0, new_states[np.maximum(last_switch, 0)], initial)
    return stream.astype(np.int64), int(stream[-1])


def _stable_seed(key: object) -> int:
    """A process-independent seed derived from a path's identity.

    ``hash()`` is randomized per interpreter process; using it would make
    OOO schedule variants differ between runs of the same experiment.
    """
    return zlib.crc32(repr(key).encode()) & 0x7FFFFFFF

