"""Branch predictors: functional models plus the steady-state analytic rate.

The loop engine needs, for each conditional branch with taken-probability
``p``, the long-run mispredict rate of the core's predictor. For a two-bit
saturating counter under i.i.d. Bernoulli(p) outcomes this is the stationary
mispredict probability of a 4-state Markov chain, computed exactly in
:func:`two_bit_mispredict_rate`.

Functional :class:`TwoBitPredictor` and :class:`GShare` implementations are
provided as the reference the analytic rate is validated against.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["TwoBitPredictor", "GShare", "two_bit_mispredict_rate"]


class TwoBitPredictor:
    """A single two-bit saturating counter.

    States 0/1 predict not-taken, 2/3 predict taken; the counter increments
    on taken outcomes and decrements on not-taken, saturating at 0 and 3.
    """

    def __init__(self, initial_state: int = 2) -> None:
        if not 0 <= initial_state <= 3:
            raise ConfigurationError(f"state must be 0..3, got {initial_state}")
        self.state = initial_state
        self.predictions = 0
        self.mispredictions = 0

    def predict(self) -> bool:
        return self.state >= 2

    def update(self, taken: bool) -> bool:
        """Record the outcome; returns True if the prediction was correct."""
        correct = self.predict() == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            self.state = min(3, self.state + 1)
        else:
            self.state = max(0, self.state - 1)
        return correct

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0


class GShare:
    """A gshare predictor: global history XOR PC indexing a counter table."""

    def __init__(self, table_bits: int = 10, history_bits: int = 8) -> None:
        if table_bits < 1 or history_bits < 0:
            raise ConfigurationError("invalid gshare geometry")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._table = [TwoBitPredictor() for _ in range(1 << table_bits)]
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        mask = (1 << self.table_bits) - 1
        return (pc ^ self._history) & mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)].predict()

    def update(self, pc: int, taken: bool) -> bool:
        counter = self._table[self._index(pc)]
        correct = counter.update(taken)
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        history_mask = (1 << self.history_bits) - 1 if self.history_bits else 0
        self._history = ((self._history << 1) | int(taken)) & history_mask
        return correct

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0


@lru_cache(maxsize=4096)
def two_bit_mispredict_rate(taken_prob: float) -> float:
    """Exact steady-state mispredict rate of a two-bit counter.

    The counter's state is a birth-death Markov chain over {0,1,2,3} with
    up-probability ``p`` (taken). We solve for the stationary distribution
    and return P(predict != outcome).
    """
    p = float(taken_prob)
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"taken probability {p} outside [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    q = 1.0 - p
    # Transition matrix rows = current state, columns = next state.
    transition = np.array(
        [
            [q, p, 0, 0],
            [q, 0, p, 0],
            [0, q, 0, p],
            [0, 0, q, p],
        ]
    )
    # Stationary distribution: left eigenvector for eigenvalue 1.
    eigvals, eigvecs = np.linalg.eig(transition.T)
    idx = int(np.argmin(np.abs(eigvals - 1.0)))
    pi = np.real(eigvecs[:, idx])
    pi = pi / pi.sum()
    # States 0,1 predict not-taken (mispredict with prob p); 2,3 predict
    # taken (mispredict with prob q).
    return float((pi[0] + pi[1]) * p + (pi[2] + pi[3]) * q)
