"""Reference interpreter: slow, direct execution for engine validation.

The fast path (:mod:`repro.arch.engine`) memoizes path schedules and
samples microarchitectural events from *analytic* models (steady-state
cache miss rates, stationary mispredict probabilities). This module is the
independent implementation it is validated against: it walks the program
block by block, schedules every dynamic block traversal afresh, resolves
every memory access through the *functional* LRU cache hierarchy with real
addresses, and drives every conditional branch through a *functional*
two-bit predictor.

It is O(dynamic instructions) in Python and therefore only suitable for
small programs — which is exactly its job: tests assert that, on programs
both can run, the fast engine and this interpreter agree on instruction
counts exactly and on timing and spectral content within tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.arch.cache import CacheHierarchy
from repro.arch.branch import TwoBitPredictor
from repro.arch.config import CoreConfig
from repro.arch.pipeline import schedule_path
from repro.arch.power import PowerModel
from repro.errors import SimulationError
from repro.programs.ir import (
    Branch,
    Halt,
    Instr,
    Jump,
    LoopBack,
    MemRef,
    OpClass,
    Program,
)
from repro.types import RegionInterval, RegionTimeline, Signal

__all__ = ["ReferenceResult", "ReferenceInterpreter"]

_MAX_DYNAMIC_INSTRS = 5_000_000


@dataclass
class ReferenceResult:
    """Output of one reference-interpreted run."""

    power: Signal
    cycles: int
    instr_count: int
    timeline: RegionTimeline
    l1_miss_rate: float
    mispredict_rate: float


class _StreamWalker:
    """Generates concrete byte addresses for a MemRef stream.

    On the first touch of a stream its lines are walked once through the
    hierarchy ("warm-up"): real programs write their data before the hot
    loops read it, so steady-state behaviour -- which is what the analytic
    model in :mod:`repro.arch.cache` predicts -- starts with the data
    resident in whatever levels it fits in.
    """

    def __init__(self, rng: np.random.Generator, hierarchy: CacheHierarchy) -> None:
        self._positions: Dict[str, int] = {}
        self._bases: Dict[str, int] = {}
        self._next_base = 0
        self._rng = rng
        self._hierarchy = hierarchy

    def address(self, ref: MemRef) -> int:
        base = self._bases.get(ref.stream)
        if base is None:
            # Give each stream its own non-overlapping address range and
            # warm the hierarchy with one pass over it.
            base = self._next_base
            self._bases[ref.stream] = base
            self._next_base += 2 * ref.footprint + (1 << 20)
            line = self._hierarchy.mem.l1.line_size
            for addr in range(base, base + ref.footprint, line):
                self._hierarchy.access(addr)
        if ref.pattern == "rand":
            return base + int(self._rng.integers(0, ref.footprint))
        pos = self._positions.get(ref.stream, 0)
        self._positions[ref.stream] = (pos + ref.stride) % ref.footprint
        return base + pos


class ReferenceInterpreter:
    """Direct block-by-block execution of a program on a core model."""

    def __init__(self, program: Program, core: CoreConfig) -> None:
        self.program = program
        self.core = core
        self.power_model = PowerModel(core)

    def run(
        self,
        seed: Optional[int] = None,
        inputs: Optional[Mapping[str, float]] = None,
    ) -> ReferenceResult:
        rng = np.random.default_rng(seed)
        resolved = dict(inputs) if inputs is not None else self.program.sample_input(rng)

        hierarchy = CacheHierarchy(self.core.mem)
        predictors: Dict[str, TwoBitPredictor] = {}
        streams = _StreamWalker(rng, hierarchy)
        loop_counters: Dict[str, int] = {}

        chunks: List[np.ndarray] = []
        timeline = RegionTimeline()
        cycle = 0
        instr_count = 0
        mem_accesses = 0
        l1_misses = 0
        branch_count = 0
        mispredicts = 0

        block_name = self.program.entry
        current_region: Optional[str] = None
        region_start_cycle = 0
        clock = self.core.clock_hz

        while True:
            if instr_count > _MAX_DYNAMIC_INSTRS:
                raise SimulationError(
                    "reference interpreter budget exceeded "
                    f"({_MAX_DYNAMIC_INSTRS} dynamic instructions); use the "
                    "fast engine for programs this large"
                )
            block = self.program.block(block_name)
            term = block.terminator
            instrs = list(block.instrs)
            if not isinstance(term, Halt):
                instrs.append(Instr(OpClass.BRANCH))

            if instrs:
                schedule = schedule_path(instrs, self.core)
                waveform = np.array(self.power_model.waveform(schedule))
                extra_cycles = 0
                extra_energy = 0.0
                for instr in block.instrs:
                    if instr.mem is None:
                        continue
                    mem_accesses += 1
                    access = hierarchy.access(streams.address(instr.mem))
                    if access.level != "l1":
                        l1_misses += 1
                        exposure = 0.45 if self.core.is_ooo else 1.0
                        extra_cycles += int(
                            round((access.latency - self.core.mem.l1.hit_latency)
                                  * exposure)
                        )
                        extra_energy += self.power_model.miss_energy(
                            to_dram=access.level == "dram"
                        )
                if extra_cycles > 0:
                    tail = np.full(extra_cycles, self.power_model.stall_power)
                    tail[0] += extra_energy
                    waveform = np.concatenate([waveform, tail])

                instr_count += len(instrs)
                chunks.append(waveform)
                cycle += len(waveform)

            # Resolve the terminator (with the functional predictor for
            # conditional branches).
            if isinstance(term, Halt):
                next_block = None
            elif isinstance(term, Jump):
                next_block = term.target
            elif isinstance(term, LoopBack):
                trips = self.program.resolve_trips(term.trips, resolved)
                count = loop_counters.get(block_name, 0) + 1
                if count < trips:
                    loop_counters[block_name] = count
                    next_block = term.header
                else:
                    loop_counters[block_name] = 0
                    next_block = term.exit
            elif isinstance(term, Branch):
                p_taken = self.program.resolve_prob(term.taken_prob, resolved)
                taken = bool(rng.random() < p_taken)
                predictor = predictors.setdefault(block_name, TwoBitPredictor())
                branch_count += 1
                if not predictor.update(taken):
                    mispredicts += 1
                    penalty = self.core.mispredict_penalty
                    chunks.append(np.full(penalty, self.power_model.stall_power))
                    cycle += penalty
                next_block = term.taken if taken else term.not_taken
            else:
                raise SimulationError(f"unhandled terminator {term!r}")

            # Region bookkeeping at loop-header granularity: attribute time
            # to 'loop:<header>' while inside a LoopBack-counted loop.
            if next_block is None:
                break
            block_name = next_block

        if current_region is None:
            timeline.append(RegionInterval("run", 0.0, cycle / clock))

        power_cycles = np.concatenate(chunks) if chunks else np.empty(0)
        cps = self.core.cycles_per_sample
        n_full = len(power_cycles) // cps
        samples = power_cycles[: n_full * cps].reshape(n_full, cps).mean(axis=1)

        return ReferenceResult(
            power=Signal(samples, self.core.sample_rate),
            cycles=cycle,
            instr_count=instr_count,
            timeline=timeline,
            l1_miss_rate=l1_misses / mem_accesses if mem_accesses else 0.0,
            mispredict_rate=mispredicts / branch_count if branch_count else 0.0,
        )
