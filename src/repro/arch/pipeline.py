"""Cycle-accurate scheduling of one control path through a core.

A *path* is a straight-line instruction sequence (one control path through a
loop body, or one basic block). :func:`schedule_path` assigns each
instruction a fetch, issue, and completion cycle under either an in-order or
an out-of-order (dataflow) discipline, respecting operand dependencies,
issue width, functional-unit structural hazards, and (for OOO) the reorder
buffer.

Out-of-order cores additionally support *schedule variants*: passing an
``rng`` perturbs issue arbitration the way dynamic events (port conflicts,
replay, partial flushes) do on real OOO hardware. The paper observes that
OOO cores "produce more variation in the dynamically constructed
instruction schedule, creating more variation among STSs" (Section 5.3);
variants are how the model reproduces that.

Cross-iteration overlap is not modelled: consecutive iterations execute
back-to-back without pipelining across the back edge. This uniformly
stretches per-iteration periods, shifting loop peaks without changing any
of the comparative results (DESIGN.md D1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import CoreConfig
from repro.arch.isa import Unit, base_latency, unit_of
from repro.errors import SimulationError
from repro.programs.ir import Instr

__all__ = ["PathSchedule", "schedule_path", "unit_pipes"]

# Mean arbitration-delay events per *cycle* of a perturbed OOO schedule
# variant. Scaling with the path's cycle count (not its instruction
# count) keeps the relative timing difference between schedule variants
# independent of issue width -- the paper's ANOVA finds width has no
# significant effect on detection latency.
_OOO_JITTER_RATE = 0.025


@dataclass(frozen=True)
class PathSchedule:
    """Cycle assignment for each instruction of a path.

    Attributes:
        instrs: the scheduled instructions.
        fetch: cycle each instruction entered the front end.
        issue: cycle each instruction began executing.
        complete: first cycle at which each result is available.
        cycles: total path length in cycles.
    """

    instrs: Tuple[Instr, ...]
    fetch: np.ndarray
    issue: np.ndarray
    complete: np.ndarray
    cycles: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the path."""
        return len(self.instrs) / self.cycles if self.cycles else 0.0


def unit_pipes(core: CoreConfig) -> Dict[Unit, int]:
    """Number of pipes (parallel issue slots) per functional unit."""
    width = core.issue_width
    return {
        Unit.ALU: max(1, width),
        Unit.MUL: 1,
        Unit.DIV: 1,
        Unit.FPU: max(1, width // 2),
        Unit.MEM: max(1, width // 2),
        Unit.CTRL: 1,
    }


class _UnitTracker:
    """Tracks per-pipe availability for the functional units.

    Pipelined units accept one instruction per pipe per cycle; the divider
    is unpipelined and is busy until its current operation completes.
    """

    def __init__(self, core: CoreConfig) -> None:
        self._free: Dict[Unit, List[int]] = {
            unit: [0] * pipes for unit, pipes in unit_pipes(core).items()
        }

    def earliest(self, unit: Unit, not_before: int) -> int:
        return max(not_before, min(self._free[unit]))

    def occupy(self, unit: Unit, cycle: int, latency: int) -> None:
        pipes = self._free[unit]
        idx = min(range(len(pipes)), key=lambda i: pipes[i])
        if unit is Unit.DIV:
            pipes[idx] = cycle + latency  # unpipelined
        else:
            pipes[idx] = cycle + 1


def schedule_path(
    instrs: Sequence[Instr],
    core: CoreConfig,
    rng: Optional[np.random.Generator] = None,
    expected_cycles: Optional[int] = None,
) -> PathSchedule:
    """Schedule ``instrs`` on ``core``; see module docstring.

    ``rng`` requests a perturbed OOO schedule variant; it is ignored for
    in-order cores, whose schedules are deterministic. ``expected_cycles``
    (the unperturbed schedule's length, when the caller knows it) sets the
    jitter-event budget; otherwise it is estimated from the issue width.
    """
    n = len(instrs)
    if n == 0:
        return PathSchedule((), np.array([], int), np.array([], int), np.array([], int), 0)

    l1_latency = core.mem.l1.hit_latency
    fetch = np.zeros(n, dtype=int)
    issue = np.zeros(n, dtype=int)
    complete = np.zeros(n, dtype=int)

    units = _UnitTracker(core)
    issued_in_cycle: Dict[int, int] = {}
    reg_ready: Dict[str, int] = {}

    jitter = rng if (rng is not None and core.is_ooo) else None
    delayed: Dict[int, int] = {}
    if jitter is not None:
        estimated_cycles = expected_cycles or max(1, n // core.issue_width)
        n_events = min(n, int(jitter.poisson(_OOO_JITTER_RATE * estimated_cycles)))
        max_delay = 1 + core.pipeline_depth // 10
        for index in jitter.choice(n, size=n_events, replace=False):
            delayed[int(index)] = int(jitter.integers(1, max_delay + 1))

    prev_issue = 0
    for i, instr in enumerate(instrs):
        latency = base_latency(instr, l1_latency)
        unit = unit_of(instr)

        operand_ready = 0
        for src in instr.srcs:
            operand_ready = max(operand_ready, reg_ready.get(src, 0))

        if core.is_ooo:
            fetch[i] = i // core.issue_width
            earliest = max(fetch[i] + 1, operand_ready)
            if i >= core.rob_size:
                # ROB full until the instruction rob_size back retires.
                earliest = max(earliest, int(complete[i - core.rob_size]))
            if i in delayed:
                # Dynamic-arbitration delay; its magnitude grows with
                # pipeline depth (deeper front end => larger replay/flush
                # transients), which is what gives depth its weak effect
                # on OOO detection latency in the paper's Section 5.3
                # ANOVA.
                earliest += delayed[i]
        else:
            # In-order issue: cannot issue before the previous instruction.
            earliest = max(prev_issue, operand_ready)
            fetch[i] = max(0, earliest - 1)

        t = units.earliest(unit, earliest)
        while issued_in_cycle.get(t, 0) >= core.issue_width:
            t += 1
        issued_in_cycle[t] = issued_in_cycle.get(t, 0) + 1
        units.occupy(unit, t, latency)

        issue[i] = t
        complete[i] = t + latency
        if instr.dst is not None:
            reg_ready[instr.dst] = int(complete[i])
        prev_issue = t

    cycles = int(complete.max())
    if cycles <= 0:
        raise SimulationError("schedule produced a zero-length path")
    return PathSchedule(tuple(instrs), fetch, issue, complete, cycles)
