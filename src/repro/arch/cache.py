"""Cache models: a functional set-associative LRU cache and the analytic
steady-state miss model used by the fast composition engine.

The functional model (:class:`Cache`, :class:`CacheHierarchy`) is the
reference implementation -- exact LRU over explicit addresses -- used by
unit tests and small detailed simulations. The analytic model
(:func:`stream_miss_profile`) predicts the *steady-state* miss rates of a
:class:`~repro.programs.ir.MemRef` stream so the loop engine can sample
per-iteration miss counts without simulating every address (DESIGN.md D1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.config import CacheConfig, MemoryConfig
from repro.programs.ir import MemRef

__all__ = ["Cache", "CacheHierarchy", "AccessResult", "MissProfile", "stream_miss_profile"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access."""

    level: str  # 'l1', 'l2', or 'dram'
    latency: int


class Cache:
    """A set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[Dict[int, int]] = [dict() for _ in range(config.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Access a byte address; returns True on hit. Fills on miss."""
        line = addr // self.config.line_size
        set_idx = line % self.config.num_sets
        tag = line // self.config.num_sets
        ways = self._sets[set_idx]
        self._tick += 1
        if tag in ways:
            ways[tag] = self._tick
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.config.assoc:
            victim = min(ways, key=ways.get)  # least recently used
            del ways[victim]
        ways[tag] = self._tick
        return False

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class CacheHierarchy:
    """L1 + L2 + DRAM, returning the latency of each access."""

    def __init__(self, mem: MemoryConfig) -> None:
        self.mem = mem
        self.l1 = Cache(mem.l1)
        self.l2 = Cache(mem.l2)

    def access(self, addr: int) -> AccessResult:
        if self.l1.access(addr):
            return AccessResult("l1", self.mem.l1.hit_latency)
        if self.l2.access(addr):
            return AccessResult("l2", self.mem.l2.hit_latency)
        return AccessResult("dram", self.mem.dram_latency)


@dataclass(frozen=True)
class MissProfile:
    """Steady-state miss probabilities of one memory-reference stream.

    ``l1_miss`` is the probability an access misses L1; ``l2_miss`` is the
    *conditional* probability an L1 miss also misses L2.
    """

    l1_miss: float
    l2_miss: float

    def mean_penalty(self, mem: MemoryConfig) -> float:
        """Expected extra cycles over an L1 hit, per access."""
        l2_extra = mem.l2.hit_latency - mem.l1.hit_latency
        dram_extra = mem.dram_latency - mem.l2.hit_latency
        return self.l1_miss * (l2_extra + self.l2_miss * dram_extra)


def _level_miss(ref: MemRef, cache: CacheConfig) -> float:
    """Steady-state miss probability of ``ref`` against one cache level.

    - Sequential streams whose footprint fits in cache: after the first
      pass every access hits (compulsory misses amortize to ~0).
    - Sequential streams larger than the cache: each new line misses, i.e.
      one miss per ``line_size/stride`` accesses.
    - Random streams: an access hits iff its line happens to be resident;
      with a footprint of F bytes competing for a cache of C bytes the
      resident fraction is ~min(1, C/F).
    """
    if ref.footprint <= cache.size:
        return 0.0
    if ref.pattern == "seq":
        accesses_per_line = max(1, cache.line_size // ref.stride)
        return 1.0 / accesses_per_line
    return max(0.0, 1.0 - cache.size / ref.footprint)


def stream_miss_profile(ref: Optional[MemRef], mem: MemoryConfig) -> MissProfile:
    """Analytic steady-state miss profile of a memory stream.

    ``ref=None`` (e.g. a synthetic instruction with no stream) is treated
    as always hitting L1.
    """
    if ref is None:
        return MissProfile(0.0, 0.0)
    l1 = _level_miss(ref, mem.l1)
    l2 = _level_miss(ref, mem.l2)
    # l2 as computed is the unconditional miss probability of the stream
    # against L2 capacity; conditioned on an L1 miss it can only be higher,
    # but for the stream patterns we model the unconditional value is the
    # right conditional estimate (misses are the novel-line accesses).
    return MissProfile(l1_miss=l1, l2_miss=l2 if l1 > 0 else 0.0)
