"""Architectural simulation substrate (the paper's SESC + WATTCH + CACTI).

The paper's second experimental setup feeds EDDIE a power signal generated
by the SESC cycle-accurate simulator with WATTCH/CACTI power models, sampled
every 20 cycles. This package reproduces that stack:

- :mod:`repro.arch.isa` -- instruction classes, latencies, functional units,
- :mod:`repro.arch.config` -- core/cache configurations (in-order and
  out-of-order presets matching the paper's two setups),
- :mod:`repro.arch.cache` -- a functional set-associative cache plus the
  analytic miss-rate model used by the fast composition engine,
- :mod:`repro.arch.branch` -- two-bit and gshare predictors plus the
  steady-state mispredict-rate model,
- :mod:`repro.arch.pipeline` -- cycle-accurate scheduling of one control
  path through in-order / out-of-order pipelines,
- :mod:`repro.arch.power` -- WATTCH-style per-unit activity energies,
- :mod:`repro.arch.engine` -- vectorized composition of loop executions
  from memoized path schedules (design decision D1 in DESIGN.md),
- :mod:`repro.arch.simulator` -- whole-program execution producing a
  sampled power :class:`~repro.types.Signal` and the ground-truth region
  timeline.
"""

from repro.arch.config import CacheConfig, CoreConfig, MemoryConfig
from repro.arch.simulator import SimulationResult, Simulator, simulate

__all__ = [
    "CacheConfig",
    "MemoryConfig",
    "CoreConfig",
    "Simulator",
    "SimulationResult",
    "simulate",
]
