"""Whole-program execution: power trace + ground-truth region timeline.

The simulator walks a program's CFG. Blocks outside loops are rendered one
at a time; on reaching the header of a top-level loop nest, the vectorized
composition engine renders the entire nest execution. Along the way it
records the region timeline exactly as the paper's training instrumentation
does (region identifier, entry time, exit time) and the ground-truth spans
of any injected execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import CoreConfig
from repro.arch.engine import CompositionEngine, TraceBuilder
from repro.arch.power import PowerModel
from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import LoopForest, find_loops
from repro.cfg.regions import ENTRY, EXIT, RegionMachine, build_region_machine
from repro.errors import SimulationError
from repro.obs import OBS, record_count, span
from repro.programs.ir import Branch, Halt, Instr, Jump, LoopBack, OpClass, Program
from repro.types import RegionInterval, RegionTimeline, Signal

__all__ = ["BurstSpec", "SimulationResult", "Simulator", "simulate"]

_MAX_STEPS = 10_000_000


@dataclass(frozen=True)
class BurstSpec:
    """A burst of injected execution between two loop regions.

    The burst executes ``body`` ``iterations`` times, right after the
    ``occurrence``-th dynamic exit from the loop region named
    ``after_region`` (a ``loop:<header>`` name). This models the paper's
    shellcode injection: ~476k instructions executed outside any
    application loop.
    """

    after_region: str
    body: Tuple[Instr, ...]
    iterations: int = 1
    occurrence: int = 0

    @property
    def instr_count(self) -> int:
        return len(self.body) * self.iterations


@dataclass
class SimulationResult:
    """Everything one simulated run produces.

    Attributes:
        power: the sampled power trace (one sample per
            ``core.cycles_per_sample`` cycles).
        timeline: ground-truth region intervals, in seconds.
        injected_spans: (t_start, t_end) of every stretch containing
            injected execution.
        cycles: total simulated cycles.
        instr_count: dynamic instructions executed (injected included).
        injected_instr_count: dynamic injected instructions executed.
        inputs: the resolved input parameters of this run.
    """

    power: Signal
    timeline: RegionTimeline
    injected_spans: List[Tuple[float, float]] = field(default_factory=list)
    cycles: int = 0
    instr_count: int = 0
    injected_instr_count: int = 0
    inputs: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.power.duration

    def contains_injection(self, start: float, end: float) -> bool:
        """Whether [start, end) overlaps any injected span."""
        return any(s < end and start < e for s, e in self.injected_spans)


class Simulator:
    """Executes a program on a core model.

    One simulator serves one (program, core) pair; :meth:`run` may be
    called many times with different seeds/inputs (schedule memoization is
    shared across runs). Injections are configured per-simulator with
    :meth:`set_loop_injection` / :meth:`add_burst`.
    """

    def __init__(
        self,
        program: Program,
        core: CoreConfig,
        power_model: Optional[PowerModel] = None,
    ) -> None:
        self.program = program
        self.core = core
        self.cfg = ControlFlowGraph.from_program(program)
        domtree = compute_dominators(self.cfg)
        self.forest: LoopForest = find_loops(self.cfg, domtree)
        self.machine: RegionMachine = build_region_machine(program, self.cfg, self.forest)
        self.engine = CompositionEngine(program, core, self.forest, power_model)
        self._bursts: List[BurstSpec] = []

    # -- injection configuration ---------------------------------------------

    def set_loop_injection(
        self, loop_header: str, instrs: Sequence[Instr], contamination: float = 1.0
    ) -> None:
        """Inject ``instrs`` into the body of the loop headed at ``loop_header``.

        Each iteration independently executes the injection with probability
        ``contamination`` (the paper's contamination rate, Section 5.4).
        """
        if not 0.0 <= contamination <= 1.0:
            raise SimulationError(f"contamination {contamination} outside [0, 1]")
        if not self.forest.is_header(loop_header):
            raise SimulationError(f"{loop_header!r} is not a loop header")
        self.engine.loop_injections[loop_header] = (tuple(instrs), contamination)

    def clear_injections(self) -> None:
        self.engine.loop_injections.clear()
        self._bursts.clear()

    def add_burst(self, burst: BurstSpec) -> None:
        """Schedule a burst injection after a loop region exit."""
        if burst.after_region not in self.machine.loop_regions:
            raise SimulationError(
                f"burst after_region {burst.after_region!r} is not a loop "
                f"region of {self.program.name!r}"
            )
        self._bursts.append(burst)

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        seed: Optional[int] = None,
        inputs: Optional[Mapping[str, float]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> SimulationResult:
        """Execute the program once and return its trace and ground truth."""
        with span("sim.run"):
            result = self._run(seed, inputs, rng)
        if OBS.enabled:
            record_count("arch.simulator", "runs")
            record_count("arch.simulator", "cycles", result.cycles)
            record_count("arch.simulator", "instructions", result.instr_count)
            if result.injected_instr_count:
                record_count(
                    "arch.simulator",
                    "injected_instructions",
                    result.injected_instr_count,
                )
        return result

    def _run(
        self,
        seed: Optional[int],
        inputs: Optional[Mapping[str, float]],
        rng: Optional[np.random.Generator],
    ) -> SimulationResult:
        if rng is None:
            rng = np.random.default_rng(seed)
        resolved = dict(inputs) if inputs is not None else self.program.sample_input(rng)

        builder = TraceBuilder(self.core.cycles_per_sample)
        clock = self.core.clock_hz
        timeline = RegionTimeline()
        injected_spans: List[Tuple[float, float]] = []
        instr_count = 0
        injected_instrs = 0
        loop_exit_counts: Dict[str, int] = {}

        block = self.program.entry
        last_loop_region = ENTRY
        inter_start_cycle = 0
        steps = 0
        halted = False

        while not halted:
            steps += 1
            if steps > _MAX_STEPS:
                raise SimulationError(
                    f"execution of {self.program.name!r} exceeded "
                    f"{_MAX_STEPS} control steps; runaway program?"
                )
            nest = self.forest.top_level_containing(block)
            if nest is not None and block == nest.header:
                region_name = f"loop:{nest.header}"
                # Close the preceding inter-loop region.
                enter_cycle = builder.total_cycles
                self._record_inter(
                    timeline, last_loop_region, region_name,
                    inter_start_cycle, enter_cycle, clock,
                )
                execution = self.engine.run_nest(nest, resolved, rng, builder)
                exit_cycle = builder.total_cycles
                timeline.append(
                    RegionInterval(region_name, enter_cycle / clock, exit_cycle / clock)
                )
                instr_count += execution.instr_count
                injected_instrs += execution.injected_instr_count
                if execution.injected_instr_count > 0:
                    injected_spans.append((enter_cycle / clock, exit_cycle / clock))

                # Burst injections scheduled after this region occurrence.
                occurrence = loop_exit_counts.get(region_name, 0)
                loop_exit_counts[region_name] = occurrence + 1
                for burst in self._bursts:
                    if burst.after_region == region_name and burst.occurrence == occurrence:
                        burst_start = builder.total_cycles
                        executed = self.engine.run_repeated(
                            list(burst.body), burst.iterations, rng, builder
                        )
                        instr_count += executed
                        injected_instrs += executed
                        injected_spans.append(
                            (burst_start / clock, builder.total_cycles / clock)
                        )

                inter_start_cycle = exit_cycle
                last_loop_region = region_name
                block = execution.exit_block
                continue

            # Plain block outside any loop.
            blk = self.program.block(block)
            term = blk.terminator
            if isinstance(term, Halt):
                instr_count += self.engine.run_straightline(blk.instrs, (), rng, builder)
                halted = True
            elif isinstance(term, Jump):
                instrs = list(blk.instrs) + [Instr(OpClass.BRANCH)]
                instr_count += self.engine.run_straightline(instrs, (), rng, builder)
                block = term.target
            elif isinstance(term, Branch):
                p_taken = self.program.resolve_prob(term.taken_prob, resolved)
                instrs = list(blk.instrs) + [Instr(OpClass.BRANCH)]
                instr_count += self.engine.run_straightline(
                    instrs, (p_taken,), rng, builder
                )
                block = term.taken if rng.random() < p_taken else term.not_taken
            elif isinstance(term, LoopBack):
                raise SimulationError(
                    f"block {block!r} carries a LoopBack but is outside every "
                    f"loop; malformed program"
                )
            else:
                raise SimulationError(f"unhandled terminator {term!r}")

        # Close the final inter-loop region (to EXIT).
        self._record_inter(
            timeline, last_loop_region, EXIT,
            inter_start_cycle, builder.total_cycles, clock,
        )

        power = Signal(builder.samples(), self.core.sample_rate)
        return SimulationResult(
            power=power,
            timeline=timeline,
            injected_spans=_merge_spans(injected_spans),
            cycles=builder.total_cycles,
            instr_count=instr_count,
            injected_instr_count=injected_instrs,
            inputs=resolved,
        )

    def _record_inter(
        self,
        timeline: RegionTimeline,
        src: str,
        dst: str,
        start_cycle: int,
        end_cycle: int,
        clock: float,
    ) -> None:
        if end_cycle <= start_cycle:
            return
        name = self.machine.inter_region_between(src, dst)
        if name is None:
            # The walk may traverse a src->dst pair the static machine did
            # not enumerate (it can only happen through engine exit paths);
            # label it with the canonical name so monitoring still sees a
            # consistent identifier.
            name = f"inter:{src}->{dst}"
        timeline.append(RegionInterval(name, start_cycle / clock, end_cycle / clock))


def _merge_spans(spans: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping/adjacent (start, end) spans."""
    if not spans:
        return []
    ordered = sorted(spans)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def simulate(
    program: Program,
    core: CoreConfig,
    seed: Optional[int] = None,
    inputs: Optional[Mapping[str, float]] = None,
) -> SimulationResult:
    """One-call convenience: build a Simulator and run it once."""
    return Simulator(program, core).run(seed=seed, inputs=inputs)
