"""Core and memory-hierarchy configurations.

Two presets mirror the paper's setups:

- :meth:`CoreConfig.iot_inorder` -- the A13-OLinuXino's Cortex-A8: 2-issue
  in-order, 32 kB L1, 256 kB L2 (Section 5.1).
- :meth:`CoreConfig.sim_ooo` -- the SESC model: 1.8 GHz 4-issue out-of-order
  with 32 kB L1 and the paper's (unusually large) 64 MB L2, power sampled
  every 20 cycles (Section 5.3).

The paper's §5.3 sensitivity sweep varies ``kind``, ``issue_width``,
``pipeline_depth`` and ``rob_size``; :func:`architecture_sweep` enumerates
the same 51 configurations (3 + 18 in-order/OOO grid split as in the paper:
in-order {1,2,4}-issue x 2 depths, OOO {1,2,4}-issue x 3 depths x 5 ROBs).

Note on time scale: simulating literal GHz clocks for tens of milliseconds
is infeasible in pure Python, so experiment profiles may pass a scaled-down
``clock_hz``. All spectral geometry (peak positions relative to Nyquist,
window statistics) is invariant under this scaling because every frequency
in the system derives from the clock. See DESIGN.md D4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List

from repro.errors import ConfigurationError

__all__ = ["CacheConfig", "MemoryConfig", "CoreConfig", "architecture_sweep"]


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size: int
    assoc: int
    line_size: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.line_size <= 0:
            raise ConfigurationError(f"invalid cache geometry: {self}")
        if self.size % (self.assoc * self.line_size) != 0:
            raise ConfigurationError(
                f"cache size {self.size} not divisible by assoc*line "
                f"({self.assoc}*{self.line_size})"
            )
        if self.hit_latency < 1:
            raise ConfigurationError("hit latency must be >= 1 cycle")

    @property
    def num_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)


@dataclass(frozen=True)
class MemoryConfig:
    """The cache hierarchy plus DRAM."""

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4, hit_latency=2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * 1024, 8, hit_latency=12))
    dram_latency: int = 120

    def __post_init__(self) -> None:
        if self.l2.size < self.l1.size:
            raise ConfigurationError("L2 must be at least as large as L1")
        if self.dram_latency <= self.l2.hit_latency:
            raise ConfigurationError("DRAM latency must exceed L2 hit latency")


@dataclass(frozen=True)
class CoreConfig:
    """A processor core model.

    Attributes:
        kind: ``'inorder'`` or ``'ooo'``.
        issue_width: instructions issued per cycle.
        pipeline_depth: front-end depth; sets the branch mispredict penalty.
        rob_size: reorder-buffer entries (OOO only; ignored for in-order).
        clock_hz: core clock. Scaled-down values are legitimate (see module
            docstring).
        cycles_per_sample: power-trace decimation (paper: 20).
        mem: cache hierarchy.
        name: human-readable label for reports.
    """

    kind: str = "inorder"
    issue_width: int = 2
    pipeline_depth: int = 8
    rob_size: int = 64
    clock_hz: float = 1.008e9
    cycles_per_sample: int = 20
    mem: MemoryConfig = field(default_factory=MemoryConfig)
    name: str = "core"

    def __post_init__(self) -> None:
        if self.kind not in ("inorder", "ooo"):
            raise ConfigurationError(f"unknown core kind {self.kind!r}")
        if self.issue_width < 1 or self.issue_width > 16:
            raise ConfigurationError(f"issue width {self.issue_width} out of range")
        if self.pipeline_depth < 3:
            raise ConfigurationError("pipeline depth must be >= 3")
        if self.kind == "ooo" and self.rob_size < self.issue_width:
            raise ConfigurationError("ROB must hold at least one issue group")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock must be positive")
        if self.cycles_per_sample < 1:
            raise ConfigurationError("cycles_per_sample must be >= 1")

    @property
    def is_ooo(self) -> bool:
        return self.kind == "ooo"

    @property
    def sample_rate(self) -> float:
        """Power-trace sample rate in samples/second."""
        return self.clock_hz / self.cycles_per_sample

    @property
    def mispredict_penalty(self) -> int:
        """Branch mispredict penalty in cycles (front-end refill)."""
        return self.pipeline_depth

    def scaled(self, clock_hz: float) -> "CoreConfig":
        """A copy with a different clock (experiment scaling knob)."""
        return replace(self, clock_hz=clock_hz)

    # -- the paper's two setups ------------------------------------------------

    @classmethod
    def iot_inorder(cls, clock_hz: float = 1.008e9) -> "CoreConfig":
        """The real-IoT setup: Cortex-A8-like 2-issue in-order (Sec. 5.1)."""
        return cls(
            kind="inorder",
            issue_width=2,
            pipeline_depth=13,
            clock_hz=clock_hz,
            mem=MemoryConfig(
                l1=CacheConfig(32 * 1024, 4, hit_latency=2),
                l2=CacheConfig(256 * 1024, 8, hit_latency=12),
            ),
            name="iot-a8",
        )

    @classmethod
    def sim_ooo(cls, clock_hz: float = 1.8e9) -> "CoreConfig":
        """The SESC setup: 1.8 GHz 4-issue OOO, 32 kB L1, 64 MB L2 (Sec. 5.3)."""
        return cls(
            kind="ooo",
            issue_width=4,
            pipeline_depth=12,
            rob_size=128,
            clock_hz=clock_hz,
            cycles_per_sample=20,
            mem=MemoryConfig(
                l1=CacheConfig(32 * 1024, 4, hit_latency=2),
                l2=CacheConfig(64 * 1024 * 1024, 16, hit_latency=14),
            ),
            name="sesc-ooo",
        )


def architecture_sweep(clock_hz: float = 1.8e9) -> List[CoreConfig]:
    """The 51 configurations of the paper's §5.3 ANOVA study.

    In-order: 3 issue widths x 2 pipeline depths (6 configs).
    Out-of-order: 3 issue widths x 3 pipeline depths x 5 ROB sizes (45).
    """
    configs: List[CoreConfig] = []
    for width in (1, 2, 4):
        for depth in (8, 14):
            configs.append(
                CoreConfig(
                    kind="inorder",
                    issue_width=width,
                    pipeline_depth=depth,
                    clock_hz=clock_hz,
                    name=f"io-w{width}-d{depth}",
                )
            )
    for width in (1, 2, 4):
        for depth in (8, 14, 20):
            for rob in (16, 32, 64, 128, 256):
                configs.append(
                    CoreConfig(
                        kind="ooo",
                        issue_width=width,
                        pipeline_depth=depth,
                        rob_size=rob,
                        clock_hz=clock_hz,
                        name=f"ooo-w{width}-d{depth}-r{rob}",
                    )
                )
    assert len(configs) == 51
    return configs
