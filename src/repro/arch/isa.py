"""Instruction-class timing and functional-unit properties.

Latencies are in cycles and deliberately generic RISC values; what EDDIE
observes is *relative* per-iteration timing, so the exact numbers only shape
where loop peaks fall, not whether the method works.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.errors import ConfigurationError
from repro.programs.ir import Instr, OpClass

__all__ = ["Unit", "UNIT_OF", "base_latency", "unit_of"]


class Unit(enum.Enum):
    """Functional units of the modelled cores."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FPU = "fpu"
    MEM = "mem"
    CTRL = "ctrl"


UNIT_OF: Dict[OpClass, Unit] = {
    OpClass.IADD: Unit.ALU,
    OpClass.LOGIC: Unit.ALU,
    OpClass.SHIFT: Unit.ALU,
    OpClass.CMP: Unit.ALU,
    OpClass.NOP: Unit.ALU,
    OpClass.IMUL: Unit.MUL,
    OpClass.IDIV: Unit.DIV,
    OpClass.FADD: Unit.FPU,
    OpClass.FMUL: Unit.FPU,
    OpClass.FDIV: Unit.DIV,
    OpClass.LOAD: Unit.MEM,
    OpClass.STORE: Unit.MEM,
    OpClass.BRANCH: Unit.CTRL,
    OpClass.CALL: Unit.CTRL,
    OpClass.RET: Unit.CTRL,
    OpClass.SYSCALL: Unit.CTRL,
}

# Execution latency in cycles, assuming L1 hits for memory operations.
_BASE_LATENCY: Dict[OpClass, int] = {
    OpClass.IADD: 1,
    OpClass.LOGIC: 1,
    OpClass.SHIFT: 1,
    OpClass.CMP: 1,
    OpClass.NOP: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 12,
    OpClass.FADD: 3,
    OpClass.FMUL: 4,
    OpClass.FDIV: 10,
    OpClass.LOAD: 0,  # resolved from the cache config's L1 hit latency
    OpClass.STORE: 1,  # retires into the store buffer
    OpClass.BRANCH: 1,
    OpClass.CALL: 2,
    OpClass.RET: 2,
    OpClass.SYSCALL: 40,  # trap entry/exit overhead
}


def unit_of(instr: Instr) -> Unit:
    """The functional unit executing ``instr``."""
    return UNIT_OF[instr.op]


def base_latency(instr: Instr, l1_hit_latency: int) -> int:
    """Execution latency of ``instr`` in cycles, assuming cache hits."""
    if instr.op is OpClass.LOAD:
        return l1_hit_latency
    latency = _BASE_LATENCY.get(instr.op)
    if latency is None:
        raise ConfigurationError(f"no latency defined for {instr.op!r}")
    return latency
