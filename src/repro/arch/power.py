"""WATTCH-style activity-based power model.

Each scheduled instruction contributes front-end energy at its fetch cycle
and execution energy spread over its latency at its functional unit; every
cycle carries static power. The absolute unit is arbitrary (EDDIE only sees
the signal's *shape*); values are relative magnitudes in the spirit of
WATTCH's per-structure activity energies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.arch.config import CoreConfig
from repro.arch.pipeline import PathSchedule
from repro.programs.ir import OpClass

__all__ = ["PowerParams", "PowerModel"]


def _default_op_energy() -> Dict[OpClass, float]:
    return {
        OpClass.IADD: 0.08,
        OpClass.LOGIC: 0.07,
        OpClass.SHIFT: 0.07,
        OpClass.CMP: 0.06,
        OpClass.NOP: 0.02,
        OpClass.IMUL: 0.30,
        OpClass.IDIV: 0.90,
        OpClass.FADD: 0.20,
        OpClass.FMUL: 0.35,
        OpClass.FDIV: 0.80,
        OpClass.LOAD: 0.10,   # address generation; cache energy added separately
        OpClass.STORE: 0.10,
        OpClass.BRANCH: 0.05,
        OpClass.CALL: 0.10,
        OpClass.RET: 0.10,
        OpClass.SYSCALL: 1.50,
    }


@dataclass(frozen=True)
class PowerParams:
    """Per-event energies (arbitrary units) and per-cycle power levels."""

    static_per_cycle: float = 0.10
    frontend_per_instr: float = 0.05
    ooo_window_per_instr: float = 0.03
    stall_extra_per_cycle: float = 0.02
    l1_access: float = 0.10
    l2_access: float = 0.45
    dram_access: float = 2.2
    op_energy: Dict[OpClass, float] = field(default_factory=_default_op_energy)


class PowerModel:
    """Turns a :class:`PathSchedule` into a per-cycle power waveform."""

    def __init__(self, core: CoreConfig, params: PowerParams = PowerParams()) -> None:
        self.core = core
        self.params = params

    @property
    def stall_power(self) -> float:
        """Per-cycle power during a stall (miss/mispredict refill)."""
        return self.params.static_per_cycle + self.params.stall_extra_per_cycle

    @property
    def idle_power(self) -> float:
        """Per-cycle power with no instruction activity."""
        return self.params.static_per_cycle

    def miss_energy(self, to_dram: bool) -> float:
        """Energy of one cache-miss refill (L2 access, plus DRAM if needed)."""
        energy = self.params.l2_access
        if to_dram:
            energy += self.params.dram_access
        return energy

    def waveform(self, schedule: PathSchedule) -> np.ndarray:
        """Per-cycle power of one scheduled path (assuming L1 hits).

        Cache-miss and mispredict energy/stalls are added per dynamic
        iteration by the composition engine, not here.
        """
        params = self.params
        n_cycles = schedule.cycles
        power = np.full(n_cycles, params.static_per_cycle)
        if not schedule.instrs:
            return power

        per_instr_front = params.frontend_per_instr
        if self.core.is_ooo:
            per_instr_front += params.ooo_window_per_instr

        fetch = np.minimum(schedule.fetch, n_cycles - 1)
        np.add.at(power, fetch, per_instr_front)

        for i, instr in enumerate(schedule.instrs):
            start = schedule.issue[i]
            end = schedule.complete[i]
            total = params.op_energy[instr.op]
            if instr.op.is_memory:
                total += params.l1_access
            span = max(1, end - start)
            power[start:min(end, n_cycles)] += total / span
        return power
