"""Small shared value types used throughout the library.

These are deliberately dependency-light (numpy only) so every subpackage can
import them without cycles.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import SignalError

__all__ = ["Signal", "RegionInterval", "RegionTimeline", "FaultSpan"]


@dataclass(frozen=True)
class Signal:
    """A uniformly sampled signal.

    Attributes:
        samples: 1-D array of real (power) or complex (IQ) samples.
        sample_rate: samples per second.
        t0: absolute time of ``samples[0]`` in seconds.
    """

    samples: np.ndarray
    sample_rate: float
    t0: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise SignalError(f"sample_rate must be positive, got {self.sample_rate}")
        samples = np.asarray(self.samples)
        if samples.ndim != 1:
            raise SignalError(f"samples must be 1-D, got shape {samples.shape}")
        object.__setattr__(self, "samples", samples)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration(self) -> float:
        """Duration of the signal in seconds."""
        return len(self.samples) / self.sample_rate

    @property
    def nbytes(self) -> int:
        """Bytes held by the sample array (ingestion accounting)."""
        return self.samples.nbytes

    def astype(self, dtype) -> "Signal":
        """The same signal with samples cast to ``dtype``.

        Returns ``self`` when the dtype already matches, so exact
        pipelines (wire dtype == capture dtype) never copy or round.
        """
        if self.samples.dtype == np.dtype(dtype):
            return self
        return Signal(
            self.samples.astype(dtype), self.sample_rate, self.t0
        )

    @property
    def t_end(self) -> float:
        """Absolute time just past the final sample."""
        return self.t0 + self.duration

    def time_axis(self) -> np.ndarray:
        """Absolute time of each sample."""
        return self.t0 + np.arange(len(self.samples)) / self.sample_rate

    def slice_time(self, start: float, end: float) -> "Signal":
        """Return the part of the signal between absolute times ``start`` and ``end``."""
        if end < start:
            raise SignalError(f"end ({end}) precedes start ({start})")
        i0 = max(0, int(np.ceil((start - self.t0) * self.sample_rate)))
        i1 = min(len(self.samples), int(np.floor((end - self.t0) * self.sample_rate)))
        i1 = max(i0, i1)
        return Signal(self.samples[i0:i1], self.sample_rate, self.t0 + i0 / self.sample_rate)

    def concat(self, other: "Signal") -> "Signal":
        """Concatenate a signal that continues immediately after this one."""
        if other.sample_rate != self.sample_rate:
            raise SignalError(
                f"sample-rate mismatch: {self.sample_rate} vs {other.sample_rate}"
            )
        return Signal(
            np.concatenate([self.samples, other.samples]), self.sample_rate, self.t0
        )

    def iter_chunks(self, chunk_samples: int):
        """Yield the signal as consecutive :class:`Signal` chunks.

        Each chunk carries the correct ``t0``, so a consumer sees exactly
        what a live receiver delivering ``chunk_samples`` at a time would
        produce; the final chunk is the shorter remainder.
        """
        if chunk_samples < 1:
            raise SignalError(
                f"chunk_samples must be >= 1, got {chunk_samples}"
            )
        for start in range(0, len(self.samples), chunk_samples):
            yield Signal(
                self.samples[start : start + chunk_samples],
                self.sample_rate,
                self.t0 + start / self.sample_rate,
            )


@dataclass(frozen=True)
class FaultSpan:
    """Ground-truth record of one acquisition fault applied to a capture.

    Emitted by :mod:`repro.em.faults` alongside the corrupted signal so
    benchmarks can score fault-overlapping windows separately from clean
    ones.

    Attributes:
        kind: fault type (``'drop'``, ``'saturation'``, ``'gain_step'``,
            ``'impulse'``, ``'dead'``).
        t_start: absolute start time of the corrupted stretch, seconds.
        t_end: absolute end time (exclusive), seconds.
        magnitude: fault-specific scalar (drive gain, gain-step factor,
            impulse amplitude, ...); 0.0 when not meaningful.
    """

    kind: str
    t_start: float
    t_end: float
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise SignalError(
                f"fault span {self.kind!r} ends ({self.t_end}) before it "
                f"starts ({self.t_start})"
            )

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def overlaps(self, start: float, end: float) -> bool:
        """Whether [start, end) intersects this span."""
        return self.t_start < end and start < self.t_end


@dataclass(frozen=True)
class RegionInterval:
    """One contiguous stretch of execution attributed to a program region."""

    region: str
    t_start: float
    t_end: float

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise SignalError(
                f"interval for {self.region!r} ends ({self.t_end}) before it "
                f"starts ({self.t_start})"
            )

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def contains(self, t: float) -> bool:
        """Whether absolute time ``t`` falls inside this interval."""
        return self.t_start <= t < self.t_end

    def overlaps(self, start: float, end: float) -> bool:
        """Whether [start, end) intersects this interval."""
        return self.t_start < end and start < self.t_end


@dataclass
class RegionTimeline:
    """Ground-truth record of which region executed when.

    This is the paper's lightweight instrumentation output: an ordered,
    non-overlapping list of :class:`RegionInterval`.
    """

    intervals: List[RegionInterval] = field(default_factory=list)

    def __post_init__(self) -> None:
        for prev, cur in zip(self.intervals, self.intervals[1:]):
            if cur.t_start < prev.t_end - 1e-12:
                raise SignalError(
                    f"timeline intervals overlap: {prev.region!r} ends at "
                    f"{prev.t_end}, {cur.region!r} starts at {cur.t_start}"
                )
        self._starts = [iv.t_start for iv in self.intervals]

    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self) -> Iterator[RegionInterval]:
        return iter(self.intervals)

    def append(self, interval: RegionInterval) -> None:
        """Append an interval that starts at or after the last one ends."""
        if self.intervals and interval.t_start < self.intervals[-1].t_end - 1e-12:
            raise SignalError(
                f"appended interval for {interval.region!r} starts at "
                f"{interval.t_start}, before previous end "
                f"{self.intervals[-1].t_end}"
            )
        self.intervals.append(interval)
        self._starts.append(interval.t_start)

    @property
    def t_start(self) -> float:
        if not self.intervals:
            return 0.0
        return self.intervals[0].t_start

    @property
    def t_end(self) -> float:
        if not self.intervals:
            return 0.0
        return self.intervals[-1].t_end

    def region_at(self, t: float) -> Optional[str]:
        """The region executing at absolute time ``t``, or None if in a gap."""
        idx = bisect.bisect_right(self._starts, t) - 1
        if idx < 0:
            return None
        interval = self.intervals[idx]
        return interval.region if interval.contains(t) else None

    def dominant_region(self, start: float, end: float) -> Optional[str]:
        """The region covering the largest share of [start, end), or None.

        Used to label STFT windows with ground truth; matches the paper's
        practice of attributing a window to the region that produced (most
        of) it.
        """
        if end <= start:
            return self.region_at(start)
        coverage: dict = {}
        lo = max(0, bisect.bisect_right(self._starts, start) - 1)
        for interval in self.intervals[lo:]:
            if interval.t_start >= end:
                break
            if interval.overlaps(start, end):
                overlap = min(end, interval.t_end) - max(start, interval.t_start)
                coverage[interval.region] = coverage.get(interval.region, 0.0) + overlap
        if not coverage:
            return None
        return max(coverage.items(), key=lambda item: item[1])[0]

    def regions(self) -> Sequence[str]:
        """Distinct region names, in first-appearance order."""
        seen: dict = {}
        for interval in self.intervals:
            seen.setdefault(interval.region, None)
        return list(seen)

    def total_time(self, region: str) -> float:
        """Total time attributed to ``region``."""
        return sum(iv.duration for iv in self.intervals if iv.region == region)

    def shifted(self, dt: float) -> "RegionTimeline":
        """A copy of the timeline with all times shifted by ``dt``."""
        return RegionTimeline(
            [RegionInterval(iv.region, iv.t_start + dt, iv.t_end + dt) for iv in self.intervals]
        )
