"""Fluent construction of IR programs.

Hand-writing :class:`~repro.programs.ir.BasicBlock` graphs is verbose; the
builder provides the handful of shapes the MiBench-like benchmarks need:
straight-line blocks, single-block counted loops, loops whose bodies choose
among several control paths per iteration, and two-level loop nests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import AnalysisError, ConfigurationError
from repro.programs.ir import (
    BasicBlock,
    Branch,
    Halt,
    Instr,
    Jump,
    LoopBack,
    ParamSpec,
    ProbSpec,
    Program,
    TripSpec,
    resolve_spec,
)

__all__ = ["ProgramBuilder"]


def _conditional_prob(probs: Sequence[ProbSpec], k: int) -> ProbSpec:
    """P(path k | paths 0..k-1 not taken) for the selector cascade."""
    earlier = list(probs[:k])
    spec = probs[k]
    if isinstance(spec, (int, float)) and all(
        isinstance(p, (int, float)) for p in earlier
    ):
        remaining = 1.0 - sum(earlier)
        return float(spec) / remaining if remaining > 0 else 1.0

    def conditional(inputs) -> float:
        remaining = 1.0 - sum(resolve_spec(p, inputs) for p in earlier)
        if remaining <= 0:
            return 1.0
        return min(1.0, max(0.0, resolve_spec(spec, inputs) / remaining))

    return conditional


class ProgramBuilder:
    """Accumulates blocks and parameters, then builds a validated Program.

    Example::

        b = ProgramBuilder("demo")
        b.param("n", "int", 500, 1500)
        b.block("init", [], next_block="L1")
        b.counted_loop("L1", body=[...], trips="n", exit="done")
        b.halt("done")
        program = b.build(entry="init")
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._blocks: List[BasicBlock] = []
        self._params: List[ParamSpec] = []

    # -- parameters ---------------------------------------------------------

    def param(
        self,
        name: str,
        kind: str,
        low: float = 0.0,
        high: float = 1.0,
        choices: Sequence[float] = (),
    ) -> "ProgramBuilder":
        """Declare an input parameter (sampled per run)."""
        if any(p.name == name for p in self._params):
            raise ConfigurationError(f"duplicate parameter {name!r}")
        self._params.append(ParamSpec(name, kind, low, high, tuple(choices)))
        return self

    # -- primitive blocks ---------------------------------------------------

    def add(self, block: BasicBlock) -> "ProgramBuilder":
        """Add an explicitly constructed block."""
        if any(b.name == block.name for b in self._blocks):
            raise AnalysisError(f"duplicate block name {block.name!r}")
        self._blocks.append(block)
        return self

    def block(
        self,
        name: str,
        instrs: Sequence[Instr] = (),
        next_block: Optional[str] = None,
    ) -> "ProgramBuilder":
        """A straight-line block ending in a jump (or Halt if no successor)."""
        term = Jump(next_block) if next_block is not None else Halt()
        return self.add(BasicBlock(name, list(instrs), term))

    def halt(self, name: str, instrs: Sequence[Instr] = ()) -> "ProgramBuilder":
        """A terminal block."""
        return self.add(BasicBlock(name, list(instrs), Halt()))

    def branch_block(
        self,
        name: str,
        instrs: Sequence[Instr],
        taken: str,
        not_taken: str,
        taken_prob: ProbSpec = 0.5,
    ) -> "ProgramBuilder":
        """A block ending in a two-way conditional branch."""
        return self.add(BasicBlock(name, list(instrs), Branch(taken, not_taken, taken_prob)))

    # -- loop shapes ---------------------------------------------------------

    def counted_loop(
        self,
        name: str,
        body: Sequence[Instr],
        trips: TripSpec,
        exit: str,
    ) -> "ProgramBuilder":
        """A single-block counted loop (self back-edge).

        This is the canonical "sharp spectral peak" shape: every iteration
        executes the same instructions, so per-iteration time is nearly
        constant and the loop's spectral peak is narrow.
        """
        return self.add(BasicBlock(name, list(body), LoopBack(name, exit, trips)))

    def branchy_loop(
        self,
        name: str,
        paths: Sequence[Tuple[ProbSpec, Sequence[Instr]]],
        trips: TripSpec,
        exit: str,
        pre: Sequence[Instr] = (),
        post: Sequence[Instr] = (),
    ) -> "ProgramBuilder":
        """A loop whose body takes one of several control paths per iteration.

        ``paths`` is a list of (probability, instructions); probabilities
        may be literals, input-parameter names, or callables of the input
        dict, and must sum to 1 (validated at build time for literals, at
        run time otherwise). Path timing differences broaden/split the
        loop's spectral peak -- the paper's "several peaks" and "diffuse
        hump" loop shapes.

        Blocks created: ``name`` (header with ``pre``), ``name.sel<k>``
        selector blocks, ``name.p<k>`` path blocks, and ``name.latch`` with
        ``post`` and the back-edge.
        """
        if len(paths) < 2:
            raise ConfigurationError("branchy_loop needs at least two paths")
        probs = [p for p, _ in paths]
        all_literal = all(isinstance(p, (int, float)) for p in probs)
        if all_literal and abs(sum(probs) - 1.0) > 1e-9:
            raise ConfigurationError(
                f"path probabilities sum to {sum(probs)}, not 1"
            )
        latch = f"{name}.latch"
        # Selector cascade: header branches to path 0 with prob p0, else to
        # the next selector, which branches to path 1 with renormalized
        # probability p1/(1-p0), and so on.
        current = name
        pre_instrs: Sequence[Instr] = pre
        for k in range(len(paths) - 1):
            last_selector = k + 1 >= len(paths) - 1
            next_sel = f"{name}.p{len(paths) - 1}" if last_selector else f"{name}.sel{k + 1}"
            conditional = _conditional_prob(probs, k)
            self.branch_block(
                current, pre_instrs, taken=f"{name}.p{k}", not_taken=next_sel,
                taken_prob=conditional,
            )
            current = next_sel
            pre_instrs = ()
        for k, (_, instrs) in enumerate(paths):
            self.block(f"{name}.p{k}", instrs, next_block=latch)
        self.add(BasicBlock(latch, list(post), LoopBack(name, exit, trips)))
        return self

    def nested_loop(
        self,
        name: str,
        inner_body: Sequence[Instr],
        inner_trips: TripSpec,
        outer_trips: TripSpec,
        exit: str,
        outer_pre: Sequence[Instr] = (),
        outer_post: Sequence[Instr] = (),
    ) -> "ProgramBuilder":
        """A two-level counted loop nest.

        Blocks created: ``name`` (outer header with ``outer_pre``),
        ``name.inner`` (inner self-loop), ``name.latch`` (``outer_post``
        plus outer back-edge). The paper merges the entire nest into one
        region; the inner loop's iteration frequency dominates the spectrum
        with a lower-frequency component from the outer loop.
        """
        inner = f"{name}.inner"
        latch = f"{name}.latch"
        self.block(name, outer_pre, next_block=inner)
        self.add(BasicBlock(inner, list(inner_body), LoopBack(inner, latch, inner_trips)))
        self.add(BasicBlock(latch, list(outer_post), LoopBack(name, exit, outer_trips)))
        return self

    # -- build ----------------------------------------------------------------

    def build(self, entry: str) -> Program:
        """Validate and return the finished Program."""
        return Program(self.name, self._blocks, entry, self._params)
