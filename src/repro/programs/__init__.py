"""Program substrate: a mini-IR and the MiBench-like benchmark programs.

The paper evaluates EDDIE on 10 MiBench C programs compiled for an ARM
Cortex-A8. We reproduce the *side-channel-relevant* structure of those
programs -- loop nests, per-iteration instruction mixes, trip counts, and
data-dependent control flow -- as hand-built CFGs over a small instruction
set (:mod:`repro.programs.ir`). The arithmetic a benchmark performs is
irrelevant to EDDIE; its loop periodicity is everything.
"""

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import (
    BasicBlock,
    Branch,
    Halt,
    Instr,
    Jump,
    LoopBack,
    MemRef,
    OpClass,
    Program,
    instruction_helpers,
)

__all__ = [
    "OpClass",
    "MemRef",
    "Instr",
    "Jump",
    "Branch",
    "LoopBack",
    "Halt",
    "BasicBlock",
    "Program",
    "ProgramBuilder",
    "instruction_helpers",
]
