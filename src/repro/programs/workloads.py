"""Reusable instruction kernels and parametric loop shapes.

These are the building blocks of the MiBench-like programs and of the
figure-specific workloads:

- kernels: straight-line instruction sequences with a chosen mix (integer,
  floating-point, memory-bound, mixed), sized so loop iteration periods
  land in the window-resolvable range (period of ~100-2000 cycles);
- the three loop shapes of the paper's Figure 3: a loop whose spectrum has
  one *sharp* peak (uniform body), one with *several* peaks (a few control
  paths with distinct timings), and one with *diffuse*, poorly defined
  peaks (many paths with widely spread timings).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Instr, MemRef, OpClass, Program

__all__ = [
    "int_kernel",
    "fp_kernel",
    "mem_kernel",
    "mixed_kernel",
    "crypto_kernel",
    "injection_mix",
    "sharp_loop_program",
    "multi_peak_loop_program",
    "diffuse_loop_program",
]


def int_kernel(n: int, tag: str, dense_fraction: float = 0.6) -> List[Instr]:
    """``n`` integer ALU instructions laid out in two power phases.

    The first ``dense_fraction`` of the body is independent work (full
    issue width, high instantaneous power); the rest is a serial
    dependency chain (IPC ~1, stalls, low power). Real loop bodies have
    exactly this phase structure (gather, compute, reduce), and the
    resulting within-iteration power contrast is what produces the strong
    per-iteration spectral line the paper observes. A body without such
    contrast barely modulates the carrier and yields a peak-less loop.
    """
    out: List[Instr] = []
    n_dense = int(n * dense_fraction)
    for i in range(n_dense):
        op = (OpClass.IADD, OpClass.LOGIC, OpClass.SHIFT, OpClass.CMP)[i % 4]
        out.append(Instr(op, dst=f"{tag}{i % 8}", srcs=(f"{tag}{(i + 3) % 8}",)))
    for i in range(n - n_dense):
        out.append(Instr(OpClass.IADD, dst=f"{tag}acc", srcs=(f"{tag}acc",)))
    return out


def fp_kernel(n: int, tag: str, div_every: int = 0, dense_fraction: float = 0.6) -> List[Instr]:
    """``n`` floating-point instructions in two power phases.

    A dense FADD/FMUL phase followed by a serial accumulation chain (and
    optional divides), mirroring :func:`int_kernel`'s contrast structure.
    """
    out: List[Instr] = []
    n_dense = int(n * dense_fraction)
    for i in range(n_dense):
        if div_every and i % div_every == div_every - 1:
            out.append(Instr(OpClass.FDIV, dst=f"{tag}d", srcs=(f"{tag}d",)))
        elif i % 2 == 0:
            out.append(Instr(OpClass.FADD, dst=f"{tag}{i % 6}", srcs=(f"{tag}{(i + 1) % 6}",)))
        else:
            out.append(Instr(OpClass.FMUL, dst=f"{tag}{i % 6}", srcs=(f"{tag}{(i + 2) % 6}",)))
    for i in range(n - n_dense):
        out.append(Instr(OpClass.FADD, dst=f"{tag}acc", srcs=(f"{tag}acc",)))
    return out


def mem_kernel(
    n_loads: int,
    tag: str,
    stream: str,
    footprint: int,
    pattern: str = "seq",
    stride: int = 4,
    n_stores: int = 0,
) -> List[Instr]:
    """Memory-access kernel over one data stream."""
    ref = MemRef(stream, footprint=footprint, stride=stride, pattern=pattern)
    out: List[Instr] = []
    for i in range(n_loads):
        out.append(Instr(OpClass.LOAD, dst=f"{tag}v{i % 4}", srcs=(f"{tag}p",), mem=ref))
        out.append(Instr(OpClass.IADD, dst=f"{tag}s", srcs=(f"{tag}s", f"{tag}v{i % 4}")))
    for i in range(n_stores):
        out.append(Instr(OpClass.STORE, dst=None, srcs=(f"{tag}s",), mem=ref))
    return out


def mixed_kernel(
    n_int: int, n_loads: int, tag: str, stream: str, footprint: int,
    pattern: str = "seq",
) -> List[Instr]:
    """Interleaved integer + memory kernel (the common loop body shape)."""
    ints = int_kernel(n_int, tag)
    mems = mem_kernel(n_loads, tag, stream, footprint, pattern)
    out: List[Instr] = []
    step = max(1, len(ints) // max(1, len(mems)))
    mem_iter = iter(mems)
    for i, instr in enumerate(ints):
        out.append(instr)
        if i % step == step - 1:
            out.extend(x for x in [next(mem_iter, None)] if x is not None)
    out.extend(mem_iter)
    return out


def crypto_kernel(n_rounds: int, tag: str, table: str, table_size: int = 4096) -> List[Instr]:
    """Shift/logic/table-lookup rounds (SHA/Rijndael-style).

    The first ~60% of the rounds operate on four independent state lanes
    (message-schedule-style parallel work, high IPC/power); the rest is
    the serial compression chain (low IPC/power). As with
    :func:`int_kernel`, the phase contrast is what gives these loops their
    razor-sharp spectral line.
    """
    ref = MemRef(table, footprint=table_size, pattern="rand")
    out: List[Instr] = []
    n_dense = int(n_rounds * 0.6)
    for i in range(n_dense):
        lane = i % 4
        out.append(Instr(OpClass.SHIFT, dst=f"{tag}a{lane}", srcs=(f"{tag}a{lane}",)))
        out.append(Instr(OpClass.LOGIC, dst=f"{tag}b{lane}", srcs=(f"{tag}b{(lane + 1) % 4}",)))
        out.append(Instr(OpClass.IADD, dst=f"{tag}c{lane}", srcs=(f"{tag}b{lane}",)))
        if i % 4 == 3:
            out.append(Instr(OpClass.LOAD, dst=f"{tag}t", srcs=(f"{tag}c{lane}",), mem=ref))
        out.append(Instr(OpClass.LOGIC, dst=f"{tag}d{lane}", srcs=(f"{tag}c{lane}",)))
    for i in range(n_rounds - n_dense):
        out.append(Instr(OpClass.SHIFT, dst=f"{tag}a", srcs=(f"{tag}a",)))
        out.append(Instr(OpClass.LOGIC, dst=f"{tag}b", srcs=(f"{tag}a", f"{tag}b")))
        out.append(Instr(OpClass.IADD, dst=f"{tag}a", srcs=(f"{tag}b", f"{tag}a")))
        if i % 4 == 3:
            out.append(Instr(OpClass.LOAD, dst=f"{tag}t", srcs=(f"{tag}a",), mem=ref))
    return out


def injection_mix(n_int: int, n_mem: int, footprint: int = 1 << 18) -> List[Instr]:
    """The paper's loop injection payload: integer ops + memory accesses.

    Section 5.2 injects "an 8-instruction code that consists of 4 integer
    operations and 4 memory accesses"; Section 5.7 varies the mix. The
    default footprint misses L1 but fits L2; pass a footprint larger than
    L2 for the paper's Section-5.7 "off-chip" variant ("randomly access a
    relatively large array so they often experience cache misses").
    """
    out: List[Instr] = [
        Instr(OpClass.IADD, dst="inj_a", srcs=("inj_a",)) for _ in range(n_int)
    ]
    if n_mem:
        ref = MemRef("inj_stream", footprint=footprint, pattern="rand")
        for i in range(n_mem):
            out.append(Instr(OpClass.STORE, dst=None, srcs=("inj_a",), mem=ref))
    return out


# --- The three Figure-3 loop shapes -----------------------------------------


def sharp_loop_program(trips: int = 12000, body_size: int = 150) -> Program:
    """A loop whose spectrum has one sharp peak and its harmonics.

    Every iteration executes the identical instruction sequence, so the
    per-iteration period is essentially constant.
    """
    b = ProgramBuilder("sharp-loop")
    b.block("init", int_kernel(20, "i"), next_block="L")
    b.counted_loop("L", int_kernel(body_size, "x"), trips=trips, exit="done")
    b.halt("done")
    return b.build(entry="init")


def multi_peak_loop_program(trips: int = 12000, body_size: int = 150) -> Program:
    """A loop with several peaks: three control paths of distinct lengths."""
    b = ProgramBuilder("multi-peak-loop")
    b.block("init", int_kernel(20, "i"), next_block="L")
    b.branchy_loop(
        "L",
        paths=[
            (0.5, int_kernel(body_size, "p")),
            (0.3, int_kernel(int(body_size * 1.4), "q")),
            (0.2, int_kernel(int(body_size * 1.9), "r")),
        ],
        trips=trips,
        exit="done",
    )
    b.halt("done")
    return b.build(entry="init")


def diffuse_loop_program(trips: int = 12000, body_size: int = 150) -> Program:
    """A loop with poorly defined (diffuse) peaks.

    Five control paths with *closely spaced* lengths plus cache-missing
    accesses: per-iteration timing wanders continuously, so the spectral
    line smears into a hump whose maximum drifts from window to window --
    peaks exist (unlike a flat/peak-less loop) but are unstable, which is
    the paper's "poorly defined peaks" right panel of Figure 3.
    """
    n_paths = 5

    def path_prob(k: int):
        # Input-dependent path mix: the "skew" input tilts probability
        # toward short or long paths, so the hump's centroid wanders from
        # run to run -- the nonstationarity that keeps the false-rejection
        # rate of this loop high at every group size (Figure 3, right).
        def prob(inputs) -> float:
            weights = [1.0 + inputs.get("skew", 0.0) * (j - (n_paths - 1) / 2)
                       for j in range(n_paths)]
            weights = [max(w, 0.05) for w in weights]
            return weights[k] / sum(weights)

        return prob

    paths: List[Tuple[object, Sequence[Instr]]] = []
    for k in range(n_paths):
        scale = 0.86 + 0.07 * k  # lengths spread ~0.86x .. 1.14x
        body = int_kernel(int(body_size * scale), f"v{k}")
        body += mem_kernel(
            4, f"v{k}", "spill", footprint=1 << 19, pattern="rand"
        )
        paths.append((path_prob(k), body))
    b = ProgramBuilder("diffuse-loop")
    b.param("skew", "float", -0.9, 0.9)
    b.block("init", int_kernel(20, "i"), next_block="L")
    b.branchy_loop("L", paths=paths, trips=trips, exit="done")
    b.halt("done")
    return b.build(entry="init")
