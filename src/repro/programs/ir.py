"""A miniature program IR with explicit control flow.

The IR captures exactly what the EDDIE pipeline needs from a program:

- instruction *classes* with register dependencies (for the pipeline timing
  model in :mod:`repro.arch`),
- memory reference *patterns* (for the cache model),
- basic blocks and terminators forming a CFG (for the region analysis in
  :mod:`repro.cfg`),
- parametric branch probabilities and loop trip counts (so that different
  "inputs" produce different executions, as the paper's 25/50 training runs
  with different inputs do).

Programs are static: executing one is the job of :mod:`repro.arch.simulator`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import AnalysisError, ConfigurationError

__all__ = [
    "OpClass",
    "MemRef",
    "Instr",
    "Jump",
    "Branch",
    "LoopBack",
    "Halt",
    "Terminator",
    "BasicBlock",
    "Program",
    "ParamSpec",
    "instruction_helpers",
]


class OpClass(enum.Enum):
    """Instruction classes distinguished by the timing and power models."""

    IADD = "iadd"
    IMUL = "imul"
    IDIV = "idiv"
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    LOGIC = "logic"
    SHIFT = "shift"
    CMP = "cmp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    RET = "ret"
    SYSCALL = "syscall"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.CALL, OpClass.RET, OpClass.SYSCALL)


@dataclass(frozen=True)
class MemRef:
    """Description of the address stream touched by a memory instruction.

    Attributes:
        stream: name of the logical data structure being walked; accesses in
            the same stream share locality state in the cache model.
        footprint: total bytes the stream touches over the loop's lifetime.
        stride: bytes between consecutive accesses (``pattern='seq'``).
        pattern: ``'seq'`` for strided walks, ``'rand'`` for uniform random
            accesses within the footprint.
    """

    stream: str
    footprint: int = 4096
    stride: int = 4
    pattern: str = "seq"

    def __post_init__(self) -> None:
        if self.pattern not in ("seq", "rand"):
            raise ConfigurationError(f"unknown access pattern {self.pattern!r}")
        if self.footprint <= 0 or self.stride <= 0:
            raise ConfigurationError(
                f"footprint and stride must be positive "
                f"(got {self.footprint}, {self.stride})"
            )


@dataclass(frozen=True)
class Instr:
    """One static instruction.

    Attributes:
        op: instruction class.
        dst: destination register name, or None.
        srcs: source register names (dependencies).
        mem: memory reference descriptor for LOAD/STORE.
    """

    op: OpClass
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    mem: Optional[MemRef] = None

    def __post_init__(self) -> None:
        if self.op.is_memory and self.mem is None:
            raise ConfigurationError(f"{self.op.value} instruction requires a MemRef")
        if not self.op.is_memory and self.mem is not None:
            raise ConfigurationError(f"{self.op.value} instruction cannot carry a MemRef")
        object.__setattr__(self, "srcs", tuple(self.srcs))

    def __str__(self) -> str:
        parts = [self.op.value]
        if self.dst:
            parts.append(self.dst)
        if self.srcs:
            parts.append("<- " + ",".join(self.srcs))
        if self.mem:
            parts.append(f"[{self.mem.stream}]")
        return " ".join(parts)


# --- Terminators -----------------------------------------------------------

# Trip counts and branch probabilities can be literals, names of input
# parameters, or callables of the resolved input dict.
TripSpec = Union[int, str, Callable[[Mapping[str, float]], int]]
ProbSpec = Union[float, str, Callable[[Mapping[str, float]], float]]


@dataclass(frozen=True)
class Jump:
    """Unconditional jump."""

    target: str


@dataclass(frozen=True)
class Branch:
    """Two-way conditional branch.

    ``taken_prob`` is the probability (per dynamic execution) of going to
    ``taken``; it models data-dependent control flow inside loop bodies,
    which the paper identifies as a key source of STS variation.
    """

    taken: str
    not_taken: str
    taken_prob: ProbSpec = 0.5


@dataclass(frozen=True)
class LoopBack:
    """Counted back-edge: jump to ``header`` ``trips - 1`` times, then exit.

    Placed on a loop's latch block. ``trips`` is the total number of times
    the header executes per entry to the loop.
    """

    header: str
    exit: str
    trips: TripSpec = 100


@dataclass(frozen=True)
class Halt:
    """Program end."""


Terminator = Union[Jump, Branch, LoopBack, Halt]


@dataclass
class BasicBlock:
    """A basic block: straight-line instructions plus one terminator."""

    name: str
    instrs: List[Instr] = field(default_factory=list)
    terminator: Terminator = field(default_factory=Halt)

    def successors(self) -> Tuple[str, ...]:
        term = self.terminator
        if isinstance(term, Jump):
            return (term.target,)
        if isinstance(term, Branch):
            return (term.taken, term.not_taken)
        if isinstance(term, LoopBack):
            return (term.header, term.exit)
        return ()

    @property
    def size(self) -> int:
        """Static instruction count, including the terminating branch."""
        extra = 0 if isinstance(self.terminator, Halt) else 1
        return len(self.instrs) + extra


@dataclass(frozen=True)
class ParamSpec:
    """Specification of one input parameter of a program.

    Sampled per run so that different runs exercise different trip counts
    and branch biases (the paper's "each time with different inputs").
    """

    name: str
    kind: str  # 'int', 'float', 'choice'
    low: float = 0.0
    high: float = 1.0
    choices: Tuple[float, ...] = ()

    def sample(self, rng: np.random.Generator) -> float:
        if self.kind == "int":
            return int(rng.integers(int(self.low), int(self.high) + 1))
        if self.kind == "float":
            return float(rng.uniform(self.low, self.high))
        if self.kind == "choice":
            if not self.choices:
                raise ConfigurationError(f"param {self.name!r}: empty choice list")
            return float(rng.choice(self.choices))
        raise ConfigurationError(f"param {self.name!r}: unknown kind {self.kind!r}")


class Program:
    """A whole program: a CFG of basic blocks plus its input parameters."""

    def __init__(
        self,
        name: str,
        blocks: Sequence[BasicBlock],
        entry: str,
        params: Sequence[ParamSpec] = (),
    ) -> None:
        self.name = name
        self.blocks: Dict[str, BasicBlock] = {}
        for block in blocks:
            if block.name in self.blocks:
                raise AnalysisError(f"duplicate block name {block.name!r}")
            self.blocks[block.name] = block
        if entry not in self.blocks:
            raise AnalysisError(f"entry block {entry!r} does not exist")
        self.entry = entry
        self.params: Tuple[ParamSpec, ...] = tuple(params)
        self._validate()

    def _validate(self) -> None:
        for block in self.blocks.values():
            for succ in block.successors():
                if succ not in self.blocks:
                    raise AnalysisError(
                        f"block {block.name!r} targets unknown block {succ!r}"
                    )
            term = block.terminator
            if isinstance(term, LoopBack) and term.header == term.exit:
                raise AnalysisError(
                    f"block {block.name!r}: loop header and exit are both "
                    f"{term.header!r}"
                )

    def block(self, name: str) -> BasicBlock:
        try:
            return self.blocks[name]
        except KeyError:
            raise AnalysisError(f"no block named {name!r} in {self.name!r}") from None

    def block_names(self) -> List[str]:
        return list(self.blocks)

    def sample_input(self, rng: np.random.Generator) -> Dict[str, float]:
        """Draw a concrete input (one value per parameter)."""
        return {p.name: p.sample(rng) for p in self.params}

    def resolve_trips(self, spec: TripSpec, inputs: Mapping[str, float]) -> int:
        """Resolve a trip-count spec against a concrete input."""
        value = self._resolve(spec, inputs)
        trips = int(round(value))
        if trips < 1:
            raise ConfigurationError(f"trip count resolved to {trips}; must be >= 1")
        return trips

    def resolve_prob(self, spec: ProbSpec, inputs: Mapping[str, float]) -> float:
        """Resolve a branch-probability spec against a concrete input."""
        prob = float(self._resolve(spec, inputs))
        if not 0.0 <= prob <= 1.0:
            raise ConfigurationError(f"branch probability resolved to {prob}")
        return prob

    @staticmethod
    def _resolve(
        spec: Union[int, float, str, Callable], inputs: Mapping[str, float]
    ) -> float:
        return resolve_spec(spec, inputs)

    @property
    def static_size(self) -> int:
        """Total static instruction count."""
        return sum(block.size for block in self.blocks.values())

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, blocks={len(self.blocks)}, "
            f"entry={self.entry!r}, params={len(self.params)})"
        )


def resolve_spec(
    spec: Union[int, float, str, Callable], inputs: Mapping[str, float]
) -> float:
    """Resolve a literal / parameter-name / callable spec to a number."""
    if callable(spec):
        return spec(inputs)
    if isinstance(spec, str):
        try:
            return inputs[spec]
        except KeyError:
            raise ConfigurationError(
                f"input parameter {spec!r} missing from {sorted(inputs)}"
            ) from None
    return spec


def instruction_helpers() -> Dict[str, Callable[..., Instr]]:
    """Return short constructors for each instruction class.

    Intended use::

        ops = instruction_helpers()
        body = [ops["iadd"]("r1", "r1", "r2"), ops["load"]("r3", mem=MemRef("a"))]
    """

    def make(op: OpClass) -> Callable[..., Instr]:
        def ctor(dst: Optional[str] = None, *srcs: str, mem: Optional[MemRef] = None) -> Instr:
            return Instr(op, dst=dst, srcs=tuple(srcs), mem=mem)

        ctor.__name__ = op.value
        ctor.__doc__ = f"Construct a {op.value} instruction."
        return ctor

    return {op.value: make(op) for op in OpClass}
