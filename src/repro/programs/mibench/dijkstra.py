"""dijkstra: single-source shortest paths over an adjacency matrix.

MiBench's ``dijkstra`` repeatedly scans the node array for the unvisited
minimum and relaxes its neighbours -- an outer per-node loop around an
inner scan loop, memory-bound over the adjacency matrix. The inner scan
dominates and gives the program its spectral peak; the relaxation's
data-dependent branch adds moderate timing spread.
"""

from __future__ import annotations

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Program
from repro.programs.workloads import int_kernel, mem_kernel, mixed_kernel

__all__ = ["dijkstra"]

_MATRIX = 1 << 20  # 1 MiB adjacency matrix: misses in L1, hits in L2


def dijkstra() -> Program:
    b = ProgramBuilder("dijkstra")
    b.param("nodes", "int", 26, 40)
    b.param("scan_len", "int", 70, 110)
    b.param("n_queries", "int", 900, 1500)

    b.block("setup", int_kernel(36, "s") + mem_kernel(10, "s", "matrix", _MATRIX),
            next_block="relax")

    # Outer loop over nodes; inner loop scans distances + relaxes edges.
    b.nested_loop(
        "relax",
        inner_body=mixed_kernel(80, 10, "rx", "matrix", _MATRIX),
        inner_trips="scan_len",
        outer_trips="nodes",
        exit="mid1",
        outer_pre=int_kernel(14, "rp"),
        outer_post=int_kernel(12, "rq"),
    )
    b.block("mid1", int_kernel(22, "m1"), next_block="enqueue")

    # Result/queue maintenance loop (lighter, integer-only).
    b.counted_loop("enqueue", int_kernel(140, "q"), trips="n_queries", exit="done")
    b.halt("done", int_kernel(18, "d"))
    return b.build(entry="setup")
