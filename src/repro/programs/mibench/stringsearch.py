"""stringsearch: Boyer-Moore-Horspool search over text.

MiBench's ``stringsearch`` scans text with the bad-character skip table:
a very tight scan loop (mostly skipping) with an occasional comparison
path on candidate matches. Its iterations are the shortest of the suite,
making it the fastest to detect in the paper (11 ms IoT, 0.2 ms
simulated, 99.9%/100% accuracy).
"""

from __future__ import annotations

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Program
from repro.programs.workloads import int_kernel, mixed_kernel

__all__ = ["stringsearch"]

_TEXT = 1 << 18


def stringsearch() -> Program:
    b = ProgramBuilder("stringsearch")
    b.param("n_tables", "int", 900, 1400)
    b.param("n_scan", "int", 2600, 4000)
    b.param("match_p", "float", 0.06, 0.14)

    b.block("setup", int_kernel(26, "s"), next_block="tables")

    # Bad-character table construction per pattern.
    b.counted_loop("tables", int_kernel(120, "t"), trips="n_tables", exit="mid1")
    b.block("mid1", int_kernel(16, "m1"), next_block="scan")

    # The scan loop: skip path (common) vs. verify path (candidate match).
    b.branchy_loop(
        "scan",
        paths=[
            (lambda inp: 1 - inp["match_p"],
             mixed_kernel(85, 6, "sk", "text", _TEXT)),
            ("match_p",
             mixed_kernel(190, 10, "vf", "text", _TEXT)),
        ],
        trips="n_scan",
        exit="done",
    )
    b.halt("done", int_kernel(14, "d"))
    return b.build(entry="setup")
