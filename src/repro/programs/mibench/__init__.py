"""MiBench-like benchmark programs (the paper's 10 evaluation workloads).

Each module builds one program whose *side-channel-relevant* structure
follows the corresponding MiBench C benchmark: number and nesting of hot
loops, per-iteration instruction mix, data-dependent control flow, and the
published quirks (e.g. GSM's peak-less loop that costs it coverage, Susan's
border-heavy regions that cost it accuracy).

``BENCHMARKS`` maps benchmark name to its builder; ``INJECTION_LOOPS``
names each benchmark's default loop-injection target (a hot loop header).
"""

from typing import Callable, Dict

from repro.programs.ir import Program
from repro.programs.mibench.basicmath import basicmath
from repro.programs.mibench.bitcount import bitcount
from repro.programs.mibench.dijkstra import dijkstra
from repro.programs.mibench.fft import fft
from repro.programs.mibench.gsm import gsm
from repro.programs.mibench.patricia import patricia
from repro.programs.mibench.rijndael import rijndael
from repro.programs.mibench.sha import sha
from repro.programs.mibench.stringsearch import stringsearch
from repro.programs.mibench.susan import susan

BENCHMARKS: Dict[str, Callable[[], Program]] = {
    "bitcount": bitcount,
    "basicmath": basicmath,
    "susan": susan,
    "dijkstra": dijkstra,
    "patricia": patricia,
    "gsm": gsm,
    "fft": fft,
    "sha": sha,
    "rijndael": rijndael,
    "stringsearch": stringsearch,
}

# Default loop-body injection target per benchmark (a hot loop header).
INJECTION_LOOPS: Dict[str, str] = {
    "bitcount": "count2",
    "basicmath": "cubic",
    "susan": "smooth.inner",
    "dijkstra": "relax.inner",
    "patricia": "lookup",
    "gsm": "stf",
    "fft": "butterfly.inner",
    "sha": "rounds",
    "rijndael": "encrypt",
    "stringsearch": "scan",
}

__all__ = [
    "BENCHMARKS",
    "INJECTION_LOOPS",
    "bitcount",
    "basicmath",
    "susan",
    "dijkstra",
    "patricia",
    "gsm",
    "fft",
    "sha",
    "rijndael",
    "stringsearch",
]
