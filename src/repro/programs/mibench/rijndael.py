"""rijndael: AES-128 encryption of a file.

MiBench's ``rijndael`` encrypts block after block with 10 rounds of
S-box/table lookups and XORs. The T-tables fit in L1, so iterations are
regular; the paper reports 99.9% / 97.1% accuracy and fast detection
(12 ms IoT, 0.6 ms simulated).
"""

from __future__ import annotations

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Program
from repro.programs.workloads import crypto_kernel, int_kernel, mem_kernel

__all__ = ["rijndael"]

_FILE = 1 << 20


def rijndael() -> Program:
    b = ProgramBuilder("rijndael")
    b.param("n_blocks", "int", 1800, 2800)
    b.param("n_sched", "int", 600, 900)

    b.block("setup", int_kernel(28, "s"), next_block="keysched")

    # Key schedule expansion: short, regular.
    b.counted_loop("keysched", crypto_kernel(30, "k", "sbox", 1024),
                   trips="n_sched", exit="mid1")
    b.block("mid1", int_kernel(18, "m1"), next_block="encrypt")

    # Block encryption: 10 rounds of T-table lookups + XOR per block,
    # streaming the input file through.
    body = crypto_kernel(44, "e", "ttables", table_size=4096)
    body += mem_kernel(8, "e", "file", _FILE)
    b.counted_loop("encrypt", body, trips="n_blocks", exit="done")
    b.halt("done", int_kernel(14, "d"))
    return b.build(entry="setup")
