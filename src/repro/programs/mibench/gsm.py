"""gsm: GSM 06.10 full-rate speech transcoding.

The paper singles GSM out: "about 40% of the execution time in GSM is
spent in one [peak-less] loop, and this accounts for nearly all of its
poor coverage" (57.1% coverage in Table 1, 68.3% in Table 2, despite 96+%
accuracy). We model that with the LPC analysis loop (``lpc``): many
control paths whose lengths spread over a ~4x range plus cache-missing
accesses, so no frequency concentrates 1% of window energy. The remaining
phases (preprocess, short-term filter, encode) are ordinary peaked loops.
"""

from __future__ import annotations

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Instr, OpClass, Program
from repro.programs.workloads import int_kernel, mixed_kernel

__all__ = ["gsm"]

_FRAMES = 1 << 19


def gsm() -> Program:
    b = ProgramBuilder("gsm")
    b.param("n_pre", "int", 1100, 1700)
    b.param("n_lpc", "int", 1400, 2200)
    b.param("n_stf", "int", 1100, 1700)
    b.param("n_enc", "int", 900, 1400)

    b.block("setup", int_kernel(30, "s"), next_block="preprocess")

    # Downscaling / offset compensation: regular integer loop.
    b.counted_loop(
        "preprocess",
        mixed_kernel(120, 6, "pp", "frames", _FRAMES),
        trips="n_pre",
        exit="mid1",
    )
    b.block("mid1", int_kernel(20, "m1"), next_block="lpc")

    # LPC analysis: the peak-less loop. Its body is homogeneous ALU work
    # at constant IPC, so the loop barely modulates the carrier: with no
    # power contrast inside the iteration there are no sidebands above the
    # noise floor, and EDDIE sees no peaks (the paper: "some loops have no
    # peaks in their STSs ... about 40% of the execution time in GSM is
    # spent in one such loop").
    flat_body = [
        Instr(OpClass.IADD, dst=f"f{i % 12}") for i in range(290)
    ]
    b.counted_loop("lpc", flat_body, trips="n_lpc", exit="mid2")
    b.block("mid2", int_kernel(20, "m2"), next_block="stf")

    # Short-term filtering: regular multiply-accumulate loop.
    b.counted_loop("stf", int_kernel(190, "sf"), trips="n_stf", exit="mid3")
    b.block("mid3", int_kernel(20, "m3"), next_block="encode")

    # RPE encoding: regular with a couple of table loads.
    b.counted_loop(
        "encode",
        mixed_kernel(150, 5, "en", "codebook", 8192),
        trips="n_enc",
        exit="done",
    )
    b.halt("done", int_kernel(16, "d"))
    return b.build(entry="setup")
