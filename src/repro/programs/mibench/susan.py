"""susan: image smoothing / edge & corner detection.

MiBench's ``susan`` scans an image with a circular mask. The paper
instruments five loop nests in it and uses it as the running example:
its brightness-threshold control flow produces multi-modal per-iteration
timing (their Figure 2), and region borders are its accuracy weak spot
(92.1% in Table 1, the lowest of the ten).

Regions: smooth (a two-level nest over pixels), edges (branchy body with
three paths from the brightness test), corners (branchy, rarer long path),
plus setup/threshold loops -- five nests total.
"""

from __future__ import annotations

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Program
from repro.programs.workloads import int_kernel, mem_kernel, mixed_kernel

__all__ = ["susan"]

_IMG = 1 << 18  # ~256 KiB image: streams through L1, mostly fits L2


def susan() -> Program:
    b = ProgramBuilder("susan")
    b.param("rows", "int", 48, 68)
    b.param("cols", "int", 80, 120)
    b.param("n_edge", "int", 3200, 4800)
    b.param("n_corner", "int", 2400, 3600)
    b.param("bright_p", "float", 0.55, 0.75)

    b.block("setup", int_kernel(40, "s") + mem_kernel(6, "s", "image", _IMG),
            next_block="lut")
    # Brightness look-up-table construction.
    b.counted_loop("lut", int_kernel(130, "t"), trips=2200, exit="midA")
    b.block("midA", int_kernel(20, "mA"), next_block="hist")
    # Threshold/histogram pass over the image (5th instrumented nest).
    b.counted_loop(
        "hist", mixed_kernel(170, 3, "h", "image", _IMG), trips=2000, exit="mid0"
    )
    b.block("mid0", int_kernel(20, "m0"), next_block="smooth")

    # Smoothing: row x column nest over the image with the mask kernel.
    b.nested_loop(
        "smooth",
        inner_body=mixed_kernel(90, 8, "sm", "image", _IMG),
        inner_trips="cols",
        outer_trips="rows",
        exit="mid1",
        outer_pre=int_kernel(12, "sp"),
        outer_post=int_kernel(10, "sq"),
    )
    b.block("mid1", int_kernel(26, "m1"), next_block="edges")

    # Edge response: the brightness threshold splits iteration timing into
    # modes (the paper's Figure 2 bimodality).
    b.branchy_loop(
        "edges",
        paths=[
            ("bright_p", mixed_kernel(70, 4, "e1", "image", _IMG)),
            (lambda inp: (1 - inp["bright_p"]) * 0.7,
             mixed_kernel(130, 6, "e2", "image", _IMG)),
            (lambda inp: (1 - inp["bright_p"]) * 0.3,
             mixed_kernel(210, 8, "e3", "image", _IMG)),
        ],
        trips="n_edge",
        exit="mid2",
    )
    b.block("mid2", int_kernel(26, "m2"), next_block="corners")

    # Corner detection: mostly-short path with a rare expensive one.
    b.branchy_loop(
        "corners",
        paths=[
            (0.85, int_kernel(110, "c1")),
            (0.15, mixed_kernel(240, 10, "c2", "image", _IMG)),
        ],
        trips="n_corner",
        exit="done",
    )
    b.halt("done", int_kernel(20, "d"))
    return b.build(entry="setup")
