"""sha: SHA-1 digest over an input stream.

MiBench's ``sha`` is dominated by the 80-round compression loop -- pure
shift/logic/add with a perfectly regular schedule. Its spectrum is a
single razor-sharp peak with harmonics, which is why the paper reports
its fastest detections (11 ms on the IoT device, 0.4 ms simulated).
"""

from __future__ import annotations

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Program
from repro.programs.workloads import crypto_kernel, int_kernel, mem_kernel

__all__ = ["sha"]

_INPUT = 1 << 19


def sha() -> Program:
    b = ProgramBuilder("sha")
    b.param("n_blocks", "int", 2200, 3400)
    b.param("n_final", "int", 500, 800)

    b.block("setup", int_kernel(30, "s") + mem_kernel(6, "s", "input", _INPUT),
            next_block="rounds")

    # Compression rounds: ~64 rounds of shift/logic/add per block, plus
    # the message-schedule loads.
    body = crypto_kernel(56, "r", "schedule", table_size=512)
    body += mem_kernel(6, "r", "input", _INPUT)
    b.counted_loop("rounds", body, trips="n_blocks", exit="mid1")
    b.block("mid1", int_kernel(18, "m1"), next_block="finalize")

    # Padding + digest output loop.
    b.counted_loop("finalize", int_kernel(130, "f"), trips="n_final", exit="done")
    b.halt("done", int_kernel(14, "d"))
    return b.build(entry="setup")
