"""fft: radix-2 FFT over synthetic waveforms.

MiBench's ``fft`` runs bit-reversal permutation followed by log2(N) stages
of butterfly loops -- a bit-twiddling integer loop and then an FP-heavy
two-level nest. Butterflies' FP latency chains give long, stable
iteration periods, so FFT detects quickly in the paper (17 ms IoT, 5 ms
simulated) with 93-97.8% accuracy.
"""

from __future__ import annotations

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Program
from repro.programs.workloads import fp_kernel, int_kernel, mem_kernel, mixed_kernel

__all__ = ["fft"]

_WAVE = 1 << 17


def fft() -> Program:
    b = ProgramBuilder("fft")
    b.param("n_rev", "int", 1300, 2100)
    b.param("stages", "int", 9, 12)
    b.param("butterflies", "int", 110, 170)
    b.param("n_mag", "int", 900, 1400)

    b.block("setup", int_kernel(34, "s") + mem_kernel(6, "s", "wave", _WAVE),
            next_block="bitrev")

    # Bit-reversal permutation: integer swaps over the sample array.
    b.counted_loop(
        "bitrev",
        mixed_kernel(110, 8, "br", "wave", _WAVE),
        trips="n_rev",
        exit="mid1",
    )
    b.block("mid1", int_kernel(22, "m1"), next_block="butterfly")

    # Butterfly stages: outer loop over stages, inner loop over pairs.
    inner = fp_kernel(96, "bf") + mem_kernel(6, "bf", "wave", _WAVE)
    b.nested_loop(
        "butterfly",
        inner_body=inner,
        inner_trips="butterflies",
        outer_trips="stages",
        exit="mid2",
        outer_pre=fp_kernel(16, "tw"),  # twiddle factor setup
        outer_post=int_kernel(10, "st"),
    )
    b.block("mid2", int_kernel(22, "m2"), next_block="magnitude")

    # Output magnitude computation: FP with square roots (divides).
    b.counted_loop(
        "magnitude", fp_kernel(120, "mg", div_every=15), trips="n_mag", exit="done"
    )
    b.halt("done", int_kernel(16, "d"))
    return b.build(entry="setup")
