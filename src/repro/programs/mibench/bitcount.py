"""bitcount: seven bit-counting algorithms run back to back.

MiBench's ``bitcnts`` times a series of bit-counting kernels over the same
random input array; each kernel is one tight integer loop, giving the
program a chain of loop regions with sharp spectral peaks. We model five
kernels (the paper instruments five loop nests for Susan and reports burst
injection "between loop 2 and 3" of bitcount, which needs at least three).

Regions: 5 counted loops (count1..count5) with distinct body sizes, so each
has a distinct peak frequency.
"""

from __future__ import annotations

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Program
from repro.programs.workloads import int_kernel, mem_kernel

__all__ = ["bitcount"]


def bitcount() -> Program:
    b = ProgramBuilder("bitcount")
    b.param("iters", "int", 1600, 2600)

    b.block("setup", int_kernel(40, "s") + mem_kernel(8, "s", "input", 1 << 16),
            next_block="count1")

    # Five bit-counting kernels with different per-iteration work:
    # table-lookup, shift-and-mask, Kernighan, nibble, and parallel counts.
    bodies = {
        "count1": int_kernel(120, "a") + mem_kernel(4, "a", "table", 2048),
        "count2": int_kernel(160, "b"),
        "count3": int_kernel(200, "c"),
        "count4": int_kernel(250, "d") + mem_kernel(4, "d", "input", 1 << 16),
        "count5": int_kernel(310, "e"),
    }
    names = list(bodies)
    for i, name in enumerate(names):
        nxt = f"mid{i + 1}" if i + 1 < len(names) else "report"
        b.counted_loop(name, bodies[name], trips="iters", exit=nxt)
        if i + 1 < len(names):
            b.block(f"mid{i + 1}", int_kernel(30, f"m{i}"), next_block=names[i + 1])

    b.halt("report", int_kernel(25, "r"))
    return b.build(entry="setup")
