"""basicmath: cubic roots, integer square roots, angle conversions.

MiBench's ``basicmath`` loops over batches of cubic equations, isqrt
calls, and degree/radian conversions -- three floating-point-heavy loop
phases. FP latency chains give the loops longer, very stable periods, so
the program is one of EDDIE's easiest targets (99.9% accuracy in both of
the paper's tables).
"""

from __future__ import annotations

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Program
from repro.programs.workloads import fp_kernel, int_kernel

__all__ = ["basicmath"]


def basicmath() -> Program:
    b = ProgramBuilder("basicmath")
    b.param("n_eq", "int", 900, 1500)
    b.param("n_sqrt", "int", 1200, 2000)
    b.param("n_angle", "int", 1500, 2400)

    b.block("setup", int_kernel(30, "s"), next_block="cubic")
    # solve_cubic(): heavy FP with divides per equation.
    b.counted_loop(
        "cubic", fp_kernel(140, "c", div_every=18), trips="n_eq", exit="mid1"
    )
    b.block("mid1", int_kernel(24, "m1"), next_block="isqrt")
    # usqrt(): integer shift/add iterations.
    b.counted_loop("isqrt", int_kernel(180, "q"), trips="n_sqrt", exit="mid2")
    b.block("mid2", int_kernel(24, "m2"), next_block="angles")
    # deg2rad/rad2deg: FP multiplies.
    b.counted_loop("angles", fp_kernel(110, "g"), trips="n_angle", exit="done")
    b.halt("done", int_kernel(16, "d"))
    return b.build(entry="setup")
