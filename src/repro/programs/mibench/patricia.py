"""patricia: PATRICIA trie insertion and lookup.

MiBench's ``patricia`` walks a radix trie of network addresses: pointer
chasing with data-dependent depth. Lookup iterations take one of several
path lengths (hit at shallow node, deep traversal, insertion with
backtrack), and the random node accesses miss caches -- together they give
patricia relatively diffuse spectra and, in the paper, one of the lower
accuracies (92.3% in Table 1).
"""

from __future__ import annotations

from repro.programs.builder import ProgramBuilder
from repro.programs.ir import Program
from repro.programs.workloads import int_kernel, mem_kernel, mixed_kernel

__all__ = ["patricia"]

_TRIE = 160 * 1024  # trie nodes: miss L1, fit L2 (bounded, multimodal jitter)


def patricia() -> Program:
    b = ProgramBuilder("patricia")
    b.param("n_lookups", "int", 1300, 2000)
    b.param("n_inserts", "int", 500, 800)
    b.param("shallow_p", "float", 0.45, 0.6)

    b.block("setup", int_kernel(40, "s") + mem_kernel(8, "s", "trie", _TRIE, "rand"),
            next_block="build")

    # Trie construction: insertions with bit-twiddling and node writes.
    b.counted_loop(
        "build",
        mixed_kernel(150, 8, "bu", "trie", _TRIE, pattern="rand"),
        trips="n_inserts",
        exit="mid1",
    )
    b.block("mid1", int_kernel(24, "m1"), next_block="lookup")

    # Lookup loop: shallow hit / deep walk / insert-with-backtrack paths.
    b.branchy_loop(
        "lookup",
        paths=[
            ("shallow_p",
             mixed_kernel(110, 5, "l1", "trie", _TRIE, pattern="rand")),
            (lambda inp: (1 - inp["shallow_p"]) * 0.75,
             mixed_kernel(150, 8, "l2", "trie", _TRIE, pattern="rand")),
            (lambda inp: (1 - inp["shallow_p"]) * 0.25,
             mixed_kernel(200, 11, "l3", "trie", _TRIE, pattern="rand")),
        ],
        trips="n_lookups",
        exit="done",
    )
    b.halt("done", int_kernel(18, "d"))
    return b.build(entry="setup")
