"""Legacy setup shim.

Metadata lives in pyproject.toml; this shim exists for environments
without the ``wheel`` package (e.g. offline installs), where PEP 517
editable installs cannot build a wheel. There, use::

    python setup.py develop

as the equivalent of ``pip install -e .``.
"""

from setuptools import setup

setup()
